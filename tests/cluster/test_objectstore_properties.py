"""Property-based tests: ObjectStore transactions vs a reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NoSuchObject, ObjectKey, ObjectStore, Transaction

KEY = ObjectKey(1, 0, "obj")


class Model:
    """Reference semantics: a byte buffer + hole set + dicts."""

    def __init__(self):
        self.exists = False
        self.data = bytearray()
        self.allocated = set()
        self.xattrs = {}

    def write(self, offset, payload):
        self.exists = True
        old_len = len(self.data)
        end = offset + len(payload)
        if old_len < end:
            self.data.extend(b"\x00" * (end - old_len))
            # Extending allocates the zero gap and the new region; holes
            # inside the old extent stay holes.
            self.allocated |= set(range(old_len, end))
        self.data[offset:end] = payload
        self.allocated |= set(range(offset, end))

    def write_full(self, payload):
        self.exists = True
        self.data = bytearray(payload)
        self.allocated = set(range(len(payload)))

    def truncate(self, size):
        self.exists = True
        if size <= len(self.data):
            del self.data[size:]
        else:
            self.allocated |= set(range(len(self.data), size))
            self.data.extend(b"\x00" * (size - len(self.data)))
        self.allocated = {i for i in self.allocated if i < len(self.data)}

    def zero(self, offset, length):
        self.exists = True
        end = min(offset + length, len(self.data))
        for i in range(offset, end):
            self.data[i] = 0
            self.allocated.discard(i)

    def remove(self):
        self.exists = False
        self.data = bytearray()
        self.allocated = set()
        self.xattrs = {}


op_strategy = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(min_value=0, max_value=64),
        st.binary(min_size=1, max_size=48),
    ),
    st.tuples(st.just("write_full"), st.binary(max_size=96), st.none()),
    st.tuples(
        st.just("truncate"), st.integers(min_value=0, max_value=96), st.none()
    ),
    st.tuples(
        st.just("zero"),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
    ),
    st.tuples(st.just("remove"), st.none(), st.none()),
    st.tuples(
        st.just("setxattr"),
        st.text(alphabet="abc", min_size=1, max_size=3),
        st.binary(max_size=8),
    ),
)


@given(ops=st.lists(op_strategy, min_size=1, max_size=30))
@settings(max_examples=150, deadline=None)
def test_transactions_match_reference_model(ops):
    store = ObjectStore()
    model = Model()
    for op, a, b in ops:
        txn = Transaction()
        if op == "write":
            txn.write(KEY, a, b)
        elif op == "write_full":
            txn.write_full(KEY, a)
        elif op == "truncate":
            txn.truncate(KEY, a)
        elif op == "zero":
            txn.zero(KEY, a, b)
        elif op == "remove":
            if not model.exists:
                with pytest.raises(NoSuchObject):
                    store.apply(txn.remove(KEY))
                continue
            txn.remove(KEY)
        elif op == "setxattr":
            txn.setxattr(KEY, a, b)

        store.apply(txn)
        # Mirror on the model.
        if op == "write":
            model.write(a, b)
        elif op == "write_full":
            model.write_full(a)
        elif op == "truncate":
            model.truncate(a)
        elif op == "zero":
            model.zero(a, b)
        elif op == "remove":
            model.remove()
        elif op == "setxattr":
            model.exists = True
            model.xattrs[a] = b

        # Invariants after every step.
        assert store.exists(KEY) == model.exists
        if model.exists:
            assert store.read(KEY) == bytes(model.data)
            obj = store.get(KEY)
            assert obj.allocated_bytes() == len(model.allocated)
            for name, value in model.xattrs.items():
                assert obj.xattrs.get(name) == value
