"""Integration tests for the RADOS-like cluster facade."""

import pytest

from repro.cluster import (
    ErasureCoded,
    NoSuchObject,
    NotEnoughReplicas,
    RadosCluster,
    Replicated,
    Transaction,
)


@pytest.fixture
def cluster():
    return RadosCluster(num_hosts=4, osds_per_host=4, pg_num=32)


@pytest.fixture
def rpool(cluster):
    return cluster.create_pool("data", Replicated(2))


@pytest.fixture
def ecpool(cluster):
    return cluster.create_pool("ecdata", ErasureCoded(k=2, m=1))


def test_write_read_roundtrip(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"hello world")
    assert cluster.read_sync(rpool, "obj1") == b"hello world"


def test_read_takes_positive_simulated_time(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"x" * 65536)
    before = cluster.sim.now
    cluster.read_sync(rpool, "obj1")
    assert cluster.sim.now > before


def test_partial_write_and_offset_read(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"aaaaaaaaaa")
    cluster.write_sync(rpool, "obj1", 3, b"BBB")
    assert cluster.read_sync(rpool, "obj1") == b"aaaBBBaaaa"
    assert cluster.read_sync(rpool, "obj1", offset=3, length=3) == b"BBB"


def test_replication_stores_two_copies(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"payload")
    key = cluster.object_key(rpool, "obj1")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    assert len(holders) == 2
    hosts = {o.node.name for o in holders}
    assert len(hosts) == 2  # distinct hosts
    for osd in holders:
        assert osd.store.read(key) == b"payload"


def test_read_of_missing_object_raises(cluster, rpool):
    with pytest.raises(NoSuchObject):
        cluster.read_sync(rpool, "ghost")


def test_remove_deletes_all_copies(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"x")
    cluster.remove_sync(rpool, "obj1")
    key = cluster.object_key(rpool, "obj1")
    assert not any(o.store.exists(key) for o in cluster.osds.values())


def test_transaction_with_xattr_and_omap(cluster, rpool):
    key = cluster.object_key(rpool, "meta")
    txn = (
        Transaction()
        .write_full(key, b"data")
        .setxattr(key, "chunk_map", b"serialized")
        .omap_set(key, {"dirty:o1": b"1"})
    )
    cluster.submit_sync(rpool, "meta", txn)
    assert cluster.run(cluster.getxattr(rpool, "meta", "chunk_map")) == b"serialized"
    assert cluster.run(cluster.omap_get(rpool, "meta", "dirty:o1")) == b"1"
    assert cluster.omap_keys(rpool, "meta") == ["dirty:o1"]
    # The xattr is replicated on every copy (self-contained object).
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    assert all(o.store.getxattr(key, "chunk_map") == b"serialized" for o in holders)


def test_stat(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"12345")
    assert cluster.run(cluster.stat(rpool, "obj1")) == 5


def test_exists(cluster, rpool):
    assert not cluster.exists(rpool, "obj1")
    cluster.write_full_sync(rpool, "obj1", b"x")
    assert cluster.exists(rpool, "obj1")


def test_list_objects(cluster, rpool):
    for i in range(5):
        cluster.write_full_sync(rpool, f"obj{i}", b"x")
    assert cluster.list_objects(rpool) == [f"obj{i}" for i in range(5)]


def test_degraded_write_and_read_with_one_down_osd(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"v1")
    key = cluster.object_key(rpool, "obj1")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    cluster.cluster_map.mark_down(holders[0])  # down but still "in"
    cluster.write_full_sync(rpool, "obj1", b"v2")  # degraded write
    assert cluster.read_sync(rpool, "obj1") == b"v2"


def test_write_fails_below_min_size(cluster):
    pool = cluster.create_pool("strict", Replicated(2))
    cluster.write_full_sync(pool, "obj1", b"v1")
    key = cluster.object_key(pool, "obj1")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    for osd_id in holders:
        cluster.cluster_map.mark_down(osd_id)
    with pytest.raises(NotEnoughReplicas):
        cluster.write_full_sync(pool, "obj1", b"v2")


def test_usage_accounting_counts_replicas(cluster, rpool):
    cluster.write_full_sync(rpool, "obj1", b"x" * 1000)
    assert cluster.pool_logical_bytes(rpool) == 1000
    used = cluster.pool_used_bytes(rpool)
    assert used >= 2 * 1000  # two replicas
    assert cluster.total_used_bytes() == used


# ------------------------------------------------------------------- EC


def test_ec_write_read_roundtrip(cluster, ecpool):
    data = bytes(range(256)) * 64
    cluster.write_full_sync(ecpool, "obj1", data)
    assert cluster.read_sync(ecpool, "obj1") == data


def test_ec_stores_k_plus_m_shards(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"y" * 3000)
    key = cluster.object_key(ecpool, "obj1")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    assert len(holders) == 3
    # Raw usage is ~1.5x logical (2+1), not 2x.
    assert cluster.pool_logical_bytes(ecpool) == 3000
    shard_bytes = sum(o.store.data_bytes() for o in holders)
    assert shard_bytes == pytest.approx(1.5 * 3000, rel=0.01)


def test_ec_read_with_one_shard_down(cluster, ecpool):
    data = b"important" * 500
    cluster.write_full_sync(ecpool, "obj1", data)
    key = cluster.object_key(ecpool, "obj1")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    cluster.cluster_map.mark_down(holders[0])
    assert cluster.read_sync(ecpool, "obj1") == data


def test_ec_read_fails_with_two_shards_down(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"data")
    key = cluster.object_key(ecpool, "obj1")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    for osd_id in holders[:2]:
        cluster.cluster_map.mark_down(osd_id)
    with pytest.raises(NotEnoughReplicas):
        cluster.read_sync(ecpool, "obj1")


def test_ec_partial_write_rmw(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"a" * 100)
    cluster.write_sync(ecpool, "obj1", 10, b"MODIFIED")
    got = cluster.read_sync(ecpool, "obj1")
    assert got[:10] == b"a" * 10
    assert got[10:18] == b"MODIFIED"
    assert got[18:] == b"a" * 82


def test_ec_partial_write_creates_object(cluster, ecpool):
    cluster.write_sync(ecpool, "fresh", 4, b"tail")
    assert cluster.read_sync(ecpool, "fresh") == b"\x00" * 4 + b"tail"


def test_ec_offset_read(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"0123456789")
    assert cluster.read_sync(ecpool, "obj1", offset=4, length=3) == b"456"


def test_ec_remove(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"x" * 100)
    cluster.remove_sync(ecpool, "obj1")
    key = cluster.object_key(ecpool, "obj1")
    assert not any(o.store.exists(key) for o in cluster.osds.values())


def test_ec_stat_reports_logical_length(cluster, ecpool):
    cluster.write_full_sync(ecpool, "obj1", b"z" * 12345)
    assert cluster.run(cluster.stat(ecpool, "obj1")) == 12345


# ---------------------------------------------------------------- topology


def test_duplicate_pool_rejected(cluster):
    cluster.create_pool("p1")
    with pytest.raises(ValueError):
        cluster.create_pool("p1")


def test_duplicate_host_rejected(cluster):
    with pytest.raises(ValueError):
        cluster.add_host("host0", 2)


def test_add_host_grows_cluster(cluster):
    before = len(cluster.osds)
    cluster.add_host("newhost", 4)
    assert len(cluster.osds) == before + 4


def test_multiple_clients_contend(cluster, rpool):
    """Two clients writing concurrently both succeed and interleave."""
    c1 = cluster.client("c1")
    c2 = cluster.client("c2")

    def writer(cluster, pool, client, prefix):
        for i in range(5):
            yield from cluster.write_full(pool, f"{prefix}-{i}", b"d" * 4096, client)

    p1 = cluster.sim.process(writer(cluster, rpool, c1, "a"))
    p2 = cluster.sim.process(writer(cluster, rpool, c2, "b"))
    cluster.sim.run()
    assert p1.ok and p2.ok
    assert len(cluster.list_objects(rpool)) == 10
