"""Additional RADOS facade coverage: clients, stats, misc paths."""

import pytest

from repro.cluster import (
    ErasureCoded,
    NoSuchObject,
    RadosCluster,
    Transaction,
)


@pytest.fixture
def cluster():
    return RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)


def test_named_clients_have_own_nics(cluster):
    a = cluster.client("a")
    b = cluster.client("b")
    assert a.nic is not b.nic


def test_write_with_explicit_client_counts_traffic(cluster):
    pool = cluster.create_pool("p")
    client = cluster.client("traffic")
    cluster.run(cluster.write_full(pool, "o", b"x" * 8192, client))
    assert client.nic.bytes_sent >= 8192


def test_read_transfers_to_issuing_client(cluster):
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "o", b"y" * 4096)
    client = cluster.client("reader")
    data = cluster.run(cluster.read(pool, "o", 0, None, client))
    assert data == b"y" * 4096
    assert client.nic.bytes_received >= 4096


def test_stat_missing_object_raises(cluster):
    pool = cluster.create_pool("p")
    with pytest.raises(NoSuchObject):
        cluster.run(cluster.stat(pool, "ghost"))


def test_omap_keys_snapshot(cluster):
    pool = cluster.create_pool("p")
    key = cluster.object_key(pool, "o")
    cluster.submit_sync(
        pool, "o", Transaction().omap_set(key, {"b": b"2", "a": b"1"})
    )
    assert sorted(cluster.omap_keys(pool, "o")) == ["a", "b"]


def test_pool_logical_bytes_ec_counts_payload_once(cluster):
    pool = cluster.create_pool("ec", ErasureCoded(2, 1))
    cluster.write_full_sync(pool, "o1", b"z" * 9000)
    cluster.write_full_sync(pool, "o2", b"w" * 1000)
    assert cluster.pool_logical_bytes(pool) == 10000


def test_list_objects_scopes_by_pool(cluster):
    p1 = cluster.create_pool("p1")
    p2 = cluster.create_pool("p2")
    cluster.write_full_sync(p1, "only-in-1", b"a")
    cluster.write_full_sync(p2, "only-in-2", b"b")
    assert cluster.list_objects(p1) == ["only-in-1"]
    assert cluster.list_objects(p2) == ["only-in-2"]


def test_same_oid_in_two_pools_is_distinct(cluster):
    p1 = cluster.create_pool("p1")
    p2 = cluster.create_pool("p2")
    cluster.write_full_sync(p1, "shared-name", b"pool-one")
    cluster.write_full_sync(p2, "shared-name", b"pool-two")
    assert cluster.read_sync(p1, "shared-name") == b"pool-one"
    assert cluster.read_sync(p2, "shared-name") == b"pool-two"


def test_degraded_ec_write_then_recovery_restores_parity(cluster):
    from repro.cluster import recover_sync

    pool = cluster.create_pool("ec", ErasureCoded(2, 1))
    cluster.write_full_sync(pool, "o", b"v1" * 2000)
    key = cluster.object_key(pool, "o")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    cluster.cluster_map.mark_down(holders[2])
    cluster.write_full_sync(pool, "o", b"v2" * 2000)  # degraded: 2 shards
    cluster.cluster_map.mark_out(holders[2])
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    assert cluster.read_sync(pool, "o") == b"v2" * 2000
    # Full shard count restored.
    up_holders = [
        o for o in cluster.osds.values() if o.up and o.store.exists(key)
    ]
    assert len(up_holders) == 3
