"""Tests for failure handling, recovery, and rebalancing."""


from repro.cluster import (
    ErasureCoded,
    RadosCluster,
    Replicated,
    recover_sync,
)


def fill(cluster, pool, n=40, size=4096, prefix="obj"):
    for i in range(n):
        cluster.write_full_sync(pool, f"{prefix}{i}", bytes([i % 256]) * size)


def all_replicated_ok(cluster, pool, n, size, prefix="obj"):
    for i in range(n):
        key = cluster.object_key(pool, f"{prefix}{i}")
        acting = [cluster.osds[j] for j in pool.acting_set_for(f"{prefix}{i}")]
        for osd in acting:
            if not osd.up:
                return False
            if not osd.store.exists(key):
                return False
            if osd.store.read(key) != bytes([i % 256]) * size:
                return False
    return True


def test_recovery_restores_replica_count():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=40)
    cluster.fail_osd(0)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    assert all_replicated_ok(cluster, pool, 40, 4096)


def test_recovery_reports_progress_and_duration():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=40)
    cluster.fail_osd(0)
    stats = recover_sync(cluster)
    if stats.objects_recovered:
        assert stats.bytes_moved > 0
        assert stats.duration > 0


def test_recovery_time_scales_with_data():
    """Twice the data stored should take roughly twice as long to heal
    (Table 3's mechanism: dedup halves stored bytes -> faster recovery)."""

    def recovery_time(n_objects):
        cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
        pool = cluster.create_pool("data", Replicated(2))
        fill(cluster, pool, n=n_objects, size=65536)
        cluster.fail_osd(0)
        cluster.fail_osd(1)
        stats = recover_sync(cluster)
        assert stats.objects_lost == 0
        return stats.duration

    small = recovery_time(30)
    big = recovery_time(60)
    assert big > small * 1.4


def test_double_failure_with_two_replicas_loses_nothing_if_disjoint():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=60)
    cluster.fail_osd(0)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    cluster.fail_osd(2)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    assert all_replicated_ok(cluster, pool, 60, 4096)


def test_ec_shard_reconstruction():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("ec", ErasureCoded(k=2, m=1))
    payloads = {f"e{i}": bytes([i]) * 10000 for i in range(20)}
    for oid, data in payloads.items():
        cluster.write_full_sync(pool, oid, data)
    cluster.fail_osd(3)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    for oid, data in payloads.items():
        assert cluster.read_sync(pool, oid) == data
    # Every object has all 3 shards again.
    for oid in payloads:
        key = cluster.object_key(pool, oid)
        holders = [o for o in cluster.osds.values() if o.up and o.store.exists(key)]
        assert len(holders) == 3


def test_rebalance_after_adding_host():
    cluster = RadosCluster(num_hosts=3, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=60)
    cluster.add_host("host3", 2)
    recover_sync(cluster)
    # New OSDs received some data.
    new_osds = [o for o in cluster.osds.values() if o.node.name == "host3"]
    assert sum(len(o.store) for o in new_osds) > 0
    # Everything still readable and fully replicated.
    assert all_replicated_ok(cluster, pool, 60, 4096)
    # Stale copies were cleaned up: total copies == 2 per object.
    total_objects = sum(len(o.store) for o in cluster.osds.values())
    assert total_objects == 60 * 2


def test_revive_then_backfill():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=30)
    cluster.fail_osd(0)
    recover_sync(cluster)
    cluster.revive_osd(0)
    stats = recover_sync(cluster)
    assert stats.objects_lost == 0
    assert all_replicated_ok(cluster, pool, 30, 4096)


def test_data_loss_detected_when_all_copies_gone():
    cluster = RadosCluster(num_hosts=4, osds_per_host=1, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    fill(cluster, pool, n=30)
    # Kill every OSD that holds obj0.
    key = cluster.object_key(pool, "obj0")
    holders = [o.osd_id for o in cluster.osds.values() if o.store.exists(key)]
    for osd_id in holders:
        cluster.fail_osd(osd_id)
    stats = recover_sync(cluster)
    assert stats.objects_lost > 0
