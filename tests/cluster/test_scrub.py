"""Tests for replica scrub and repair."""


from repro.cluster import ErasureCoded, RadosCluster, Replicated
from repro.cluster.scrub import repair_pool_sync, scrub_pool_sync


def make(ec=False):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    pool = cluster.create_pool(
        "data", ErasureCoded(2, 1) if ec else Replicated(2)
    )
    for i in range(10):
        cluster.write_full_sync(pool, f"obj{i}", bytes([i]) * 3000)
    return cluster, pool


def test_scrub_clean_pool():
    cluster, pool = make()
    report = scrub_pool_sync(cluster, pool)
    assert report.clean
    assert report.objects_checked == 10


def test_scrub_detects_divergent_replica():
    cluster, pool = make()
    key = cluster.object_key(pool, "obj3")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    holders[1].store.get(key).data[5] ^= 0xFF  # silent corruption
    report = scrub_pool_sync(cluster, pool)
    assert report.inconsistent == [("obj3", holders[1].osd_id)]


def test_scrub_detects_divergent_xattr():
    """Self-contained design: dedup metadata divergence is caught by the
    same scrub that checks data."""
    cluster, pool = make()
    key = cluster.object_key(pool, "obj5")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    holders[1].store.get(key).xattrs["dedup.chunk_map"] = b"divergent"
    holders[0].store.get(key).xattrs["dedup.chunk_map"] = b"authoritative"
    report = scrub_pool_sync(cluster, pool)
    assert ("obj5", holders[1].osd_id) in report.inconsistent


def test_scrub_detects_missing_copy():
    cluster, pool = make()
    key = cluster.object_key(pool, "obj7")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    holders[1].store.delete_object(key)
    report = scrub_pool_sync(cluster, pool)
    assert report.missing == [("obj7", holders[1].osd_id)]


def test_repair_fixes_divergence_and_missing():
    cluster, pool = make()
    key3 = cluster.object_key(pool, "obj3")
    key7 = cluster.object_key(pool, "obj7")
    h3 = [o for o in cluster.osds.values() if o.store.exists(key3)]
    h7 = [o for o in cluster.osds.values() if o.store.exists(key7)]
    h3[1].store.get(key3).data[5] ^= 0xFF
    h7[1].store.delete_object(key7)
    report = scrub_pool_sync(cluster, pool)
    repaired = repair_pool_sync(cluster, pool, report)
    assert repaired == 2
    assert scrub_pool_sync(cluster, pool).clean
    assert cluster.read_sync(pool, "obj3") == bytes([3]) * 3000
    assert cluster.read_sync(pool, "obj7") == bytes([7]) * 3000


def test_ec_scrub_clean():
    cluster, pool = make(ec=True)
    report = scrub_pool_sync(cluster, pool)
    assert report.clean
    assert report.objects_checked == 10


def test_ec_scrub_detects_corrupt_shard():
    cluster, pool = make(ec=True)
    key = cluster.object_key(pool, "obj2")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    holders[0].store.get(key).data[0] ^= 0xFF
    report = scrub_pool_sync(cluster, pool)
    assert report.bad_shards
    assert all(oid == "obj2" for oid, _idx in report.bad_shards)


def test_ec_repair_restores_shard():
    cluster, pool = make(ec=True)
    key = cluster.object_key(pool, "obj2")
    holders = [o for o in cluster.osds.values() if o.store.exists(key)]
    victim = holders[0]
    victim.store.get(key).data[0] ^= 0xFF
    report = scrub_pool_sync(cluster, pool)
    # A single corrupt shard shows up; rebuild it.
    repaired = repair_pool_sync(cluster, pool, report)
    assert repaired >= 1
    assert scrub_pool_sync(cluster, pool).clean
    assert cluster.read_sync(pool, "obj2") == bytes([2]) * 3000


def test_scrub_covers_dedup_tier_pools():
    """End-to-end: the dedup tier's two pools scrub clean, and an
    injected divergence in a *chunk object's reference xattr* is caught
    and repaired by the generic machinery (the paper's 'storage features
    for free' claim)."""
    from repro.core import DedupConfig, DedupedStorage

    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=1024), start_engine=False
    )
    for i in range(6):
        storage.write_sync(f"o{i}", b"scrubbed" * 200)
    storage.drain()
    for pool in (storage.tier.metadata_pool, storage.tier.chunk_pool):
        assert scrub_pool_sync(cluster, pool).clean
    chunk_id = cluster.list_objects(storage.tier.chunk_pool)[0]
    key = cluster.object_key(storage.tier.chunk_pool, chunk_id)
    acting = storage.tier.chunk_pool.acting_set_for(chunk_id)
    # Corrupt a non-primary copy (repair treats the primary as the
    # authority, as Ceph's repair does).
    victim = cluster.osds[acting[1]]
    victim.store.get(key).xattrs["dedup.refs"] = b"trashed"
    report = scrub_pool_sync(cluster, storage.tier.chunk_pool)
    assert not report.clean
    repair_pool_sync(cluster, storage.tier.chunk_pool, report)
    assert scrub_pool_sync(cluster, storage.tier.chunk_pool).clean
    assert storage.tier.chunk_refcount(chunk_id) == 6
