"""Tests for the compression codec and store footprint estimation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ObjectKey, ObjectStore, Transaction
from repro.compression import ZlibCodec, compressed_store_bytes


def test_roundtrip():
    codec = ZlibCodec()
    data = b"some payload" * 100
    assert codec.decompress(codec.compress(data)) == data


def test_zeros_compress_well():
    result = ZlibCodec().measure(b"\x00" * 100_000)
    assert result.ratio > 0.95


def test_random_data_incompressible():
    data = random.Random(0).randbytes(100_000)
    result = ZlibCodec().measure(data)
    assert result.ratio < 0.05
    # measure() never reports worse than raw.
    assert result.compressed_bytes <= result.raw_bytes


def test_ratio_of_empty():
    assert ZlibCodec().measure(b"").ratio == 0.0


def test_invalid_level():
    with pytest.raises(ValueError):
        ZlibCodec(level=10)


def test_compressed_store_bytes_mixed_content():
    store = ObjectStore()
    key_z = ObjectKey(1, 0, "zeros")
    key_r = ObjectKey(1, 0, "random")
    store.apply(Transaction().write_full(key_z, b"\x00" * 50_000))
    store.apply(
        Transaction().write_full(key_r, random.Random(1).randbytes(50_000))
    )
    compressed = compressed_store_bytes(store)
    raw = store.used_bytes()
    assert compressed < raw
    # The zero object nearly vanishes; the random one stays ~full size.
    assert compressed == pytest.approx(raw - 50_000, rel=0.05)


@given(data=st.binary(max_size=5000), level=st.integers(min_value=0, max_value=9))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(data, level):
    codec = ZlibCodec(level)
    assert codec.decompress(codec.compress(data)) == data
