"""Tests for the baselines: local-dedup analysis and inline dedup."""

import random

import pytest

from repro.cluster import RadosCluster, Replicated
from repro.core import DedupConfig, InlineDedupStorage, analyze_dedup_potential
from repro.fingerprint import fingerprint


def test_global_beats_local_on_cross_node_duplicates():
    """Duplicates spread across OSDs: global dedup sees them, per-OSD
    local dedup mostly does not (the Figure 3 effect)."""
    cluster = RadosCluster(num_hosts=4, osds_per_host=4, pg_num=64)
    pool = cluster.create_pool("data", Replicated(2))
    # 50% dedupable: every block repeated once, spread over many objects.
    rng = random.Random(0)
    blocks = [rng.randbytes(4096) for _ in range(100)]
    for i in range(200):
        cluster.write_full_sync(pool, f"obj{i}", blocks[i % 100])
    result = analyze_dedup_potential(cluster, pool, chunk_size=4096)
    assert result.global_ratio == pytest.approx(0.5)
    assert result.local_ratio < 0.25  # most duplicate pairs split across OSDs
    assert result.total_bytes == 200 * 4096


def test_local_ratio_drops_as_osds_grow():
    """Table 1: more OSDs -> lower local dedup ratio; global constant."""

    def local_ratio(num_hosts, osds_per_host):
        cluster = RadosCluster(
            num_hosts=num_hosts, osds_per_host=osds_per_host, pg_num=64
        )
        pool = cluster.create_pool("data", Replicated(2))
        rng = random.Random(1)
        blocks = [rng.randbytes(4096) for _ in range(60)]
        for i in range(120):
            cluster.write_full_sync(pool, f"o{i}", blocks[i % 60])
        r = analyze_dedup_potential(cluster, pool, chunk_size=4096)
        assert r.global_ratio == pytest.approx(0.5)
        return r.local_ratio

    assert local_ratio(4, 1) > local_ratio(4, 4)


def test_analyzer_counts_unique_data_once_per_osd():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    cluster.write_full_sync(pool, "a", b"\x01" * 4096)
    result = analyze_dedup_potential(cluster, pool, chunk_size=4096)
    assert result.total_bytes == 4096  # replica copies excluded
    assert result.global_unique_bytes == 4096
    assert result.global_ratio == 0.0


def test_empty_pool():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1, pg_num=16)
    pool = cluster.create_pool("data", Replicated(2))
    result = analyze_dedup_potential(cluster, pool, chunk_size=4096)
    assert result.global_ratio == 0.0
    assert result.local_ratio == 0.0


# ------------------------------------------------------------------ inline


@pytest.fixture
def inline():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return InlineDedupStorage(cluster, DedupConfig(chunk_size=1024))


def test_inline_roundtrip(inline):
    data = bytes(range(256)) * 10
    inline.write_sync("obj1", data)
    assert inline.read_sync("obj1") == data


def test_inline_dedups_immediately(inline):
    inline.write_sync("a", b"dup" * 400)
    inline.write_sync("b", b"dup" * 400)
    report = inline.space_report()
    assert report.chunk_data_bytes == 1200  # stored once
    assert report.logical_bytes == 2400
    assert report.cached_data_bytes == 0  # nothing cached inline


def test_inline_partial_write_rmw(inline):
    inline.write_sync("obj1", b"a" * 2048)
    inline.write_sync("obj1", b"MOD", offset=100)
    got = inline.read_sync("obj1")
    assert got[:100] == b"a" * 100
    assert got[100:103] == b"MOD"
    assert got[103:] == b"a" * 1945


def test_inline_partial_write_slower_than_full(inline):
    """Figure 5-(a): sub-chunk writes pay a read-modify-write."""
    inline.write_sync("obj1", b"a" * 1024)
    t0 = inline.cluster.sim.now
    inline.write_sync("obj1", b"b" * 1024)  # full chunk: no RMW
    full_t = inline.cluster.sim.now - t0
    t0 = inline.cluster.sim.now
    inline.write_sync("obj1", b"c" * 512)  # half chunk: RMW
    partial_t = inline.cluster.sim.now - t0
    assert partial_t > full_t


def test_inline_overwrite_derefs(inline):
    inline.write_sync("obj1", b"1" * 1024)
    old_fp = fingerprint(b"1" * 1024)
    inline.write_sync("obj1", b"2" * 1024)
    assert not inline.cluster.exists(inline.tier.chunk_pool, old_fp)


def test_inline_empty_write_noop(inline):
    inline.write_sync("obj1", b"")
    assert inline.cluster.list_objects(inline.tier.metadata_pool) == []
