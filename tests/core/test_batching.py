"""Batched reference commits and the requeue-dedupe regression.

The batched hot path (``ChunkBatch`` -> ``DedupTier.commit_chunk_batch``
-> ``RadosCluster.submit_batch``) must be observationally identical to
the sequential ``chunk_ref``/``chunk_deref`` path: same refcounts, same
chunk objects, same space report — for any interleaving of refs and
derefs, and under injected transient faults (the batch prepares every
placement group before committing any, and every op is idempotent, so a
faulted attempt retries as a unit).
"""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig
from repro.core.objects import ChunkRef
from repro.core.tier import ChunkBatch, DedupTier, NodeClient
from repro.fingerprint import fingerprint

# Small, distinct chunk payloads; their fingerprints are the chunk ids.
PAYLOADS = [bytes([i]) * 512 for i in range(3)]
FPS = [fingerprint(p) for p in PAYLOADS]
# (pool_id, oid, offset) back-references; pool_id 1 matches the
# metadata pool of every cluster built by make_tier (deterministic ids).
REFS = [ChunkRef(1, f"o{i}", i * 512) for i in range(4)]


def make_tier(batched: bool, **overrides):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    config = DedupConfig(
        chunk_size=1024,
        batch_refs=batched,
        refset_cache_entries=64 if batched else 0,
        chunk_bloom_capacity=1024 if batched else 0,
        **overrides,
    )
    tier = DedupTier(cluster, config)
    via = NodeClient(next(iter(cluster.nodes.values())))
    return tier, via


# -- requeue_dirty dedupe (regression) --------------------------------------
#
# A retryable engine abort used to requeue the same object from both the
# pass's fault handler and the worker loop's, so one oid landed on the
# dirty list twice and was drained (and re-processed) twice.


def test_delayed_requeue_is_deduplicated():
    tier, _via = make_tier(batched=True)
    tier.requeue_dirty("obj", delay=0.5)
    tier.requeue_dirty("obj", delay=0.5)  # double-enqueue attempt
    tier.cluster.sim.run()
    assert tier.dirty_count == 1
    assert tier.next_dirty() == "obj"
    assert tier.next_dirty() is None


def test_delayed_requeue_skipped_when_already_dirty():
    tier, _via = make_tier(batched=True)
    tier.mark_dirty("obj")
    tier.requeue_dirty("obj", delay=0.5)
    tier.cluster.sim.run()
    assert tier.dirty_count == 1


def test_requeue_after_drain_fires_again():
    # Dedupe must not suppress a legitimate later requeue.
    tier, _via = make_tier(batched=True)
    tier.requeue_dirty("obj", delay=0.1)
    tier.cluster.sim.run()
    assert tier.next_dirty() == "obj"
    tier.requeue_dirty("obj", delay=0.1)
    tier.cluster.sim.run()
    assert tier.dirty_count == 1


# -- batched == sequential equivalence --------------------------------------


def apply_sequential(tier, via, ops):
    for kind, chunk_idx, ref_idx in ops:
        if kind == "ref":
            tier.cluster.run(
                tier.chunk_ref(FPS[chunk_idx], REFS[ref_idx], PAYLOADS[chunk_idx], via)
            )
        else:
            tier.cluster.run(tier.chunk_deref(FPS[chunk_idx], REFS[ref_idx], via))


def apply_batched(tier, via, ops, batch_size):
    for start in range(0, len(ops), batch_size):
        batch = ChunkBatch()
        for kind, chunk_idx, ref_idx in ops[start : start + batch_size]:
            if kind == "ref":
                batch.ref(FPS[chunk_idx], REFS[ref_idx], PAYLOADS[chunk_idx])
            else:
                batch.deref(FPS[chunk_idx], REFS[ref_idx])
        tier.cluster.run(tier.commit_chunk_batch(batch, via))


def assert_equivalent(batched_tier, sequential_tier):
    for fp in FPS:
        assert batched_tier.chunk_refcount(fp) == sequential_tier.chunk_refcount(fp)
        assert batched_tier.cluster.exists(
            batched_tier.chunk_pool, fp
        ) == sequential_tier.cluster.exists(sequential_tier.chunk_pool, fp)
    assert batched_tier.space_report() == sequential_tier.space_report()


def test_mixed_batch_matches_sequential():
    ops = [
        ("ref", 0, 0),
        ("ref", 0, 1),
        ("ref", 1, 0),
        ("deref", 0, 0),
        ("ref", 2, 2),
        ("deref", 2, 2),  # net no-op within one batch: chunk never created
        ("deref", 1, 3),  # deref of a reference never taken: no-op
    ]
    batched, bvia = make_tier(batched=True)
    sequential, svia = make_tier(batched=False)
    apply_batched(batched, bvia, ops, batch_size=len(ops))
    apply_sequential(sequential, svia, ops)
    assert_equivalent(batched, sequential)
    assert not batched.cluster.exists(batched.chunk_pool, FPS[2])


def test_batch_to_zero_refs_removes_chunk():
    batched, bvia = make_tier(batched=True)
    apply_batched(batched, bvia, [("ref", 0, 0), ("ref", 0, 1)], batch_size=2)
    assert batched.chunk_refcount(FPS[0]) == 2
    apply_batched(batched, bvia, [("deref", 0, 0), ("deref", 0, 1)], batch_size=2)
    assert not batched.cluster.exists(batched.chunk_pool, FPS[0])


# -- property: ANY interleaving, ANY batch split ----------------------------

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

op_strategy = st.tuples(
    st.sampled_from(["ref", "deref"]),
    st.integers(min_value=0, max_value=len(PAYLOADS) - 1),
    st.integers(min_value=0, max_value=len(REFS) - 1),
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=24),
    batch_size=st.integers(min_value=1, max_value=8),
)
def test_any_interleaving_batched_equals_sequential(ops, batch_size):
    batched, bvia = make_tier(batched=True)
    sequential, svia = make_tier(batched=False)
    apply_batched(batched, bvia, ops, batch_size)
    apply_sequential(sequential, svia, ops)
    assert_equivalent(batched, sequential)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=16),
    batch_size=st.integers(min_value=1, max_value=8),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_batched_equals_sequential_under_faults(ops, batch_size, fault_seed):
    """Transient faults on the batched side change nothing observable.

    EIO windows and slow disks hit the batched cluster while a pristine
    cluster runs the same ops sequentially; retrying a faulted batch as
    a unit (legal because nothing commits before every group prepares,
    and every op is idempotent) must converge to the same state.
    """
    from repro.faults import FaultInjector, FaultPlan
    from repro.faults.retry import RetryPolicy, call_with_retries

    batched, bvia = make_tier(batched=True)
    plan = FaultPlan.generate(
        seed=fault_seed,
        horizon=2.0,
        osd_ids=list(batched.cluster.osds),
        crash_rate=0.0,        # availability faults would need recovery,
        partition_rate=0.0,    # not retry — out of scope for equivalence
        slow_rate=1.0,
        eio_rate=1.5,
    )
    FaultInjector(batched.cluster, plan, auto_recover=True).attach()
    policy = RetryPolicy(max_attempts=10, base_delay=0.01, max_delay=0.5)

    for start in range(0, len(ops), batch_size):
        batch = ChunkBatch()
        for kind, chunk_idx, ref_idx in ops[start : start + batch_size]:
            if kind == "ref":
                batch.ref(FPS[chunk_idx], REFS[ref_idx], PAYLOADS[chunk_idx])
            else:
                batch.deref(FPS[chunk_idx], REFS[ref_idx])
        batched.cluster.run(
            call_with_retries(
                batched.cluster.sim,
                policy,
                lambda b=batch: batched.commit_chunk_batch(b, bvia),
                op="commit_chunk_batch",
            )
        )
    batched.cluster.sim.run()  # let remaining fault windows expire

    sequential, svia = make_tier(batched=False)
    apply_sequential(sequential, svia, ops)
    assert_equivalent(batched, sequential)
