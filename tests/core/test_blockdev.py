"""Tests for the block-device view (RBD-style striping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage, PlainStorage
from repro.core.blockdev import BlockDevice

KiB = 1024


def make_device(dedup=True, size=64 * KiB, object_size=16 * KiB):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    if dedup:
        storage = DedupedStorage(
            cluster, DedupConfig(chunk_size=4 * KiB), start_engine=False
        )
    else:
        storage = PlainStorage(cluster)
    return BlockDevice(storage, size=size, object_size=object_size)


def test_write_read_within_object():
    dev = make_device()
    dev.write_sync(100, b"hello block device")
    assert dev.read_sync(100, 18) == b"hello block device"


def test_write_spanning_objects():
    dev = make_device()
    data = bytes(range(256)) * 128  # 32 KiB spans two 16 KiB objects
    dev.write_sync(8 * KiB, data)
    assert dev.read_sync(8 * KiB, len(data)) == data
    # The objects exist with the right names.
    objects = dev.storage.cluster.list_objects(dev.storage.tier.metadata_pool)
    assert "rbd.0" in objects and "rbd.1" in objects and "rbd.2" in objects


def test_unwritten_reads_zeros():
    dev = make_device()
    assert dev.read_sync(0, 1000) == b"\x00" * 1000
    dev.write_sync(50 * KiB, b"tail")
    got = dev.read_sync(49 * KiB, 2 * KiB)
    assert got[: 1 * KiB] == b"\x00" * KiB
    assert got[1 * KiB : 1 * KiB + 4] == b"tail"


def test_out_of_range_rejected():
    dev = make_device(size=16 * KiB)
    with pytest.raises(ValueError):
        dev.write_sync(16 * KiB - 2, b"xxx")
    with pytest.raises(ValueError):
        dev.read_sync(-1, 10)


def test_device_content_dedups():
    dev = make_device()
    block = b"D" * (4 * KiB)
    for i in range(8):
        dev.write_sync(i * 4 * KiB, block)
    dev.storage.drain()
    report = dev.storage.space_report()
    assert report.chunk_objects == 1  # all device blocks share one chunk


def test_discard_reclaims_whole_objects():
    dev = make_device()
    dev.write_sync(0, b"x" * (48 * KiB))  # objects 0,1,2
    dev.storage.drain()
    dev.discard_sync(16 * KiB, 16 * KiB)  # exactly object 1
    assert dev.read_sync(16 * KiB, 16 * KiB) == b"\x00" * (16 * KiB)
    assert dev.read_sync(0, 4) == b"xxxx"  # object 0 untouched
    objects = dev.storage.cluster.list_objects(dev.storage.tier.metadata_pool)
    assert "rbd.1" not in objects


def test_discard_partial_objects_noop():
    dev = make_device()
    dev.write_sync(0, b"y" * (16 * KiB))
    dev.discard_sync(1 * KiB, 2 * KiB)  # inside object 0: no-op
    assert dev.read_sync(0, 16 * KiB) == b"y" * (16 * KiB)


def test_works_over_plain_storage_too():
    dev = make_device(dedup=False)
    dev.write_sync(10 * KiB, b"plain" * 100)
    assert dev.read_sync(10 * KiB, 500) == b"plain" * 100


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60 * KiB),
            st.binary(min_size=1, max_size=6 * KiB),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=25, deadline=None)
def test_device_matches_flat_buffer(writes):
    dev = make_device()
    model = bytearray(64 * KiB)
    for offset, data in writes:
        data = data[: 64 * KiB - offset]
        if not data:
            continue
        dev.write_sync(offset, data)
        model[offset : offset + len(data)] = data
    dev.storage.drain()
    assert dev.read_sync(0, 64 * KiB) == bytes(model)
