"""Tests for the HitSet and cache manager."""

import pytest

from repro.core import DedupConfig
from repro.core.cache import CacheManager, HitSet
from repro.sim import Simulator


def advance(sim, dt):
    sim.run(until=sim.now + dt)


# ----------------------------------------------------------------- HitSet


def test_hitset_records_and_counts():
    sim = Simulator()
    hs = HitSet(sim, period=1.0, count=4)
    hs.record("obj1")
    assert hs.hit_count("obj1") == 1
    assert hs.hit_count("other") == 0


def test_hitset_counts_distinct_periods():
    sim = Simulator()
    hs = HitSet(sim, period=1.0, count=8)
    for _ in range(3):
        hs.record("obj1")
        advance(sim, 1.0)
    assert hs.hit_count("obj1") == 3


def test_hitset_same_period_counts_once():
    sim = Simulator()
    hs = HitSet(sim, period=1.0, count=8)
    for _ in range(10):
        hs.record("obj1")
    assert hs.hit_count("obj1") == 1


def test_hitset_old_periods_expire():
    sim = Simulator()
    hs = HitSet(sim, period=1.0, count=2)
    hs.record("obj1")
    advance(sim, 5.0)
    hs.record("other")  # forces rotation
    assert hs.hit_count("obj1") == 0


def test_hitset_ring_bounded():
    sim = Simulator()
    hs = HitSet(sim, period=0.1, count=3)
    for i in range(20):
        hs.record(f"o{i}")
        advance(sim, 0.1)
    assert len(hs._ring) <= 3


def test_hitset_invalid_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        HitSet(sim, period=0)
    with pytest.raises(ValueError):
        HitSet(sim, count=0)


# ----------------------------------------------------------- CacheManager


def make_manager(sim, **overrides):
    config = DedupConfig(
        hitset_period=1.0, hitset_count=8, hit_count_threshold=2, **overrides
    )
    return CacheManager(sim, config)


def test_hotness_threshold():
    sim = Simulator()
    mgr = make_manager(sim)
    mgr.record_access("obj1")
    assert not mgr.is_hot("obj1")
    advance(sim, 1.0)
    mgr.record_access("obj1")
    assert mgr.is_hot("obj1")


def test_cold_object_not_hot():
    sim = Simulator()
    mgr = make_manager(sim)
    assert not mgr.is_hot("never-seen")


def test_keep_cached_on_flush_follows_hotness():
    sim = Simulator()
    mgr = make_manager(sim)
    assert not mgr.keep_cached_on_flush("obj1")
    mgr.record_access("obj1")
    advance(sim, 1.0)
    mgr.record_access("obj1")
    assert mgr.keep_cached_on_flush("obj1")


def test_cache_on_flush_disabled():
    sim = Simulator()
    mgr = make_manager(sim, cache_on_flush=False)
    mgr.record_access("obj1")
    advance(sim, 1.0)
    mgr.record_access("obj1")
    assert mgr.is_hot("obj1")
    assert not mgr.keep_cached_on_flush("obj1")


def test_cached_bytes_accounting():
    sim = Simulator()
    mgr = make_manager(sim)
    mgr.note_cached("a", 0, 1000)
    mgr.note_cached("a", 1, 500)
    assert mgr.cached_bytes == 1500
    mgr.note_cached("a", 0, 800)  # resize, not double count
    assert mgr.cached_bytes == 1300
    mgr.note_evicted("a", 1)
    assert mgr.cached_bytes == 800
    mgr.note_evicted("a", 1)  # idempotent
    assert mgr.cached_bytes == 800


def test_victims_lru_order():
    sim = Simulator()
    mgr = make_manager(sim, cache_capacity_bytes=1000)
    mgr.note_cached("old", 0, 600)
    mgr.note_cached("new", 0, 600)
    mgr.record_access("old")  # old becomes most-recently-used
    victims = mgr.victims()
    assert victims == [("new", 0)]


def test_victims_empty_when_uncapped():
    sim = Simulator()
    mgr = make_manager(sim)  # capacity None
    mgr.note_cached("a", 0, 10**9)
    assert mgr.victims() == []
    assert not mgr.over_capacity()


def test_over_capacity_flag():
    sim = Simulator()
    mgr = make_manager(sim, cache_capacity_bytes=100)
    mgr.note_cached("a", 0, 150)
    assert mgr.over_capacity()
    mgr.note_evicted("a", 0)
    assert not mgr.over_capacity()
