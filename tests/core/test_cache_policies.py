"""Tests for the pluggable cache eviction policies (lru/lfu/fifo)."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.core.cache import CacheManager
from repro.sim import Simulator


def manager(policy, capacity=1000):
    config = DedupConfig(cache_policy=policy, cache_capacity_bytes=capacity)
    return CacheManager(Simulator(), config)


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        DedupConfig(cache_policy="clock")


def test_lru_evicts_least_recently_used():
    mgr = manager("lru")
    mgr.note_cached("a", 0, 600)
    mgr.note_cached("b", 0, 600)
    mgr.record_access("a")  # a becomes MRU
    assert mgr.victims() == [("b", 0)]


def test_fifo_ignores_recency():
    mgr = manager("fifo")
    mgr.note_cached("a", 0, 600)
    mgr.note_cached("b", 0, 600)
    mgr.record_access("a")  # does not save a under FIFO
    assert mgr.victims() == [("a", 0)]


def test_lfu_evicts_least_frequent():
    mgr = manager("lfu")
    mgr.note_cached("a", 0, 600)
    mgr.note_cached("b", 0, 600)
    for _ in range(5):
        mgr.record_access("b")
    mgr.record_access("a")
    assert mgr.victims() == [("a", 0)]


def test_lfu_frequency_reset_on_eviction():
    mgr = manager("lfu", capacity=10_000)
    mgr.note_cached("a", 0, 100)
    for _ in range(9):
        mgr.record_access("a")
    mgr.note_evicted("a", 0)
    mgr.note_cached("a", 0, 100)  # re-promoted: old frequency forgotten
    mgr.note_cached("b", 0, 100)
    mgr.record_access("b")
    mgr.config.cache_capacity_bytes = 100
    assert mgr.victims()[0] == ("a", 0)


@pytest.mark.parametrize("policy", ["lru", "lfu", "fifo"])
def test_end_to_end_capacity_respected(policy):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster,
        DedupConfig(
            chunk_size=1024,
            cache_policy=policy,
            cache_capacity_bytes=2048,
            hit_count_threshold=1,
            hitset_period=100.0,
        ),
        start_engine=False,
    )
    for i in range(6):
        storage.write_sync(f"obj{i}", bytes([i]) * 1024)
    storage.drain()
    assert storage.tier.cache.cached_bytes <= 2048
    for i in range(6):
        assert storage.read_sync(f"obj{i}") == bytes([i]) * 1024


def test_cache_hit_counters():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=1024), start_engine=False
    )
    storage.write_sync("obj1", b"h" * 1024)
    storage.read_sync("obj1")  # cached (not yet flushed)
    assert storage.tier.cache_hits == 1
    assert storage.tier.cache_misses == 0
    storage.drain()  # cold -> evicted
    storage.read_sync("obj1")  # now redirected
    assert storage.tier.cache_misses == 1
