"""Tests for tier-level chunk compression (compress_chunks)."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.core.scrub import scrub_sync
from repro.core.tier import CHUNK_ENCODING_XATTR
from repro.fingerprint import fingerprint
from repro.sim import RngRegistry


def make_storage(**overrides):
    defaults = dict(chunk_size=4096, compress_chunks=True, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


COMPRESSIBLE = (b"compressible pattern! " * 400)[:4096]


def stored_chunk_bytes(storage, chunk_id):
    key = storage.cluster.object_key(storage.tier.chunk_pool, chunk_id)
    osd = next(o for o in storage.cluster.osds.values() if o.store.exists(key))
    return bytes(osd.store.get(key).data), osd.store.get(key).xattrs.get(
        CHUNK_ENCODING_XATTR
    )


def test_compressible_chunk_stored_smaller():
    storage = make_storage()
    storage.write_sync("obj1", COMPRESSIBLE)
    storage.drain()
    fp = fingerprint(COMPRESSIBLE)
    blob, encoding = stored_chunk_bytes(storage, fp)
    assert encoding == b"zlib"
    assert len(blob) < len(COMPRESSIBLE) / 2
    # The chunk ID is the fingerprint of the *uncompressed* content.
    assert storage.read_sync("obj1") == COMPRESSIBLE


def test_incompressible_chunk_stored_raw():
    storage = make_storage()
    data = RngRegistry(3).stream("rnd").randbytes(4096)
    storage.write_sync("obj1", data)
    storage.drain()
    blob, encoding = stored_chunk_bytes(storage, fingerprint(data))
    assert encoding == b"raw"
    assert blob == data
    assert storage.read_sync("obj1") == data


def test_offset_reads_decompress_correctly():
    storage = make_storage()
    storage.write_sync("obj1", COMPRESSIBLE * 3)  # 3 chunks
    storage.drain()
    for offset, length in ((0, 100), (5000, 300), (4000, 4200), (12000, 500)):
        expected = (COMPRESSIBLE * 3)[offset : offset + length]
        assert storage.read_sync("obj1", offset=offset, length=length) == expected


def test_dedup_still_works_with_compression():
    storage = make_storage()
    for i in range(6):
        storage.write_sync(f"obj{i}", COMPRESSIBLE)
    storage.drain()
    report = storage.space_report()
    assert report.chunk_objects == 1
    # Stored bytes benefit from both dedup and compression.
    assert report.chunk_data_bytes < len(COMPRESSIBLE) / 2
    assert report.logical_bytes == 6 * len(COMPRESSIBLE)


def test_partial_write_merge_with_compressed_old_chunk():
    storage = make_storage()
    storage.write_sync("obj1", COMPRESSIBLE)
    storage.drain()
    storage.write_sync("obj1", b"PATCH", offset=2000)  # deferred RMW
    storage.drain()
    expected = bytearray(COMPRESSIBLE)
    expected[2000:2005] = b"PATCH"
    assert storage.read_sync("obj1") == bytes(expected)


def test_scrub_verifies_logical_content():
    storage = make_storage()
    for i in range(4):
        storage.write_sync(f"obj{i}", COMPRESSIBLE[: 2048 + i * 100])
    storage.drain()
    assert scrub_sync(storage.tier).clean


def test_compression_saves_space_vs_uncompressed_tier():
    def stored(compress):
        storage = make_storage(compress_chunks=compress)
        for i in range(4):
            storage.write_sync(f"o{i}", COMPRESSIBLE[:4096] + bytes([i]) * 4096)
        storage.drain()
        return storage.space_report().chunk_data_bytes

    assert stored(True) < 0.7 * stored(False)


def test_compress_level_validation():
    with pytest.raises(ValueError):
        DedupConfig(compress_level=10)
