"""Tests for object deletion in the dedup tier."""

import pytest

from repro.cluster import NoSuchObject, RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.core.scrub import scrub_sync
from repro.fingerprint import fingerprint


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def test_delete_removes_object_and_sole_chunk():
    storage = make_storage()
    storage.write_sync("obj1", b"bye" * 600)
    storage.drain()
    storage.delete_sync("obj1")
    with pytest.raises(NoSuchObject):
        storage.read_sync("obj1")
    assert storage.cluster.list_objects(storage.tier.chunk_pool) == []
    assert storage.cluster.list_objects(storage.tier.metadata_pool) == []


def test_delete_missing_raises():
    storage = make_storage()
    with pytest.raises(NoSuchObject):
        storage.delete_sync("ghost")


def test_delete_keeps_shared_chunks():
    storage = make_storage()
    storage.write_sync("a", b"shared" * 200)
    storage.write_sync("b", b"shared" * 200)
    storage.drain()
    fp = fingerprint((b"shared" * 200)[:1024])
    storage.delete_sync("a")
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)
    assert storage.tier.chunk_refcount(fp) == 1
    assert storage.read_sync("b") == b"shared" * 200
    assert scrub_sync(storage.tier).clean


def test_delete_unflushed_object():
    """Deleting before the engine ever ran: no chunks exist to deref."""
    storage = make_storage()
    storage.write_sync("obj1", b"never-flushed" * 100)
    storage.delete_sync("obj1")
    with pytest.raises(NoSuchObject):
        storage.read_sync("obj1")
    assert storage.cluster.list_objects(storage.tier.chunk_pool) == []
    # The stale dirty-list entry is harmless.
    storage.drain()
    assert scrub_sync(storage.tier).clean


def test_delete_then_recreate():
    storage = make_storage()
    storage.write_sync("obj1", b"first" * 300)
    storage.drain()
    storage.delete_sync("obj1")
    storage.write_sync("obj1", b"second" * 300)
    storage.drain()
    assert storage.read_sync("obj1") == b"second" * 300
    assert scrub_sync(storage.tier).clean


def test_delete_frees_space():
    storage = make_storage()
    for i in range(8):
        storage.write_sync(f"obj{i}", bytes([i]) * 4096)
    storage.drain()
    before = storage.space_report()
    for i in range(8):
        storage.delete_sync(f"obj{i}")
    after = storage.space_report()
    assert after.logical_bytes == 0
    assert after.chunk_data_bytes == 0
    assert after.stored_bytes == 0
    assert before.stored_bytes > 0


def test_delete_concurrent_with_engine():
    storage = make_storage()
    storage.write_sync("obj1", b"racy" * 500)

    def race():
        flush = storage.sim.process(storage.engine.process_object("obj1", force=True))
        delete = storage.sim.process(storage.delete("obj1"))
        yield storage.sim.all_of([flush, delete])

    storage.cluster.run(race())
    storage.drain()
    with pytest.raises(NoSuchObject):
        storage.read_sync("obj1")
    # Whatever interleaving happened, GC converges to zero chunks.
    from repro.core.scrub import collect_garbage_sync

    collect_garbage_sync(storage.tier)
    assert storage.cluster.list_objects(storage.tier.chunk_pool) == []
