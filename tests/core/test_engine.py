"""Tests for the post-processing dedup engine."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.fingerprint import fingerprint


def make_storage(**config_overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01, hitset_period=0.5)
    defaults.update(config_overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def test_flush_moves_chunk_to_chunk_pool():
    storage = make_storage()
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()
    fp = fingerprint(b"a" * 1024)
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)
    cmap = storage.tier.peek_chunk_map("obj1")
    entry = cmap.get(0)
    assert entry.chunk_id == fp
    assert not entry.dirty
    assert storage.read_sync("obj1") == b"a" * 1024


def test_duplicate_chunks_stored_once():
    storage = make_storage()
    for i in range(10):
        storage.write_sync(f"obj{i}", b"same-content" * 100)  # 1200 bytes
    storage.drain()
    report = storage.space_report()
    assert report.logical_bytes == 12000
    # Two unique chunks (1024 split + 176 tail) regardless of 10 copies.
    assert report.chunk_objects == 2
    assert report.chunk_data_bytes == 1200
    assert report.ideal_dedup_ratio == pytest.approx(0.9)


def test_refcount_tracks_all_referrers():
    storage = make_storage()
    for i in range(5):
        storage.write_sync(f"obj{i}", b"x" * 1024)
    storage.drain()
    fp = fingerprint(b"x" * 1024)
    assert storage.tier.chunk_refcount(fp) == 5


def test_overwrite_derefs_old_chunk():
    storage = make_storage()
    storage.write_sync("obj1", b"old-content" + b"\x00" * 1013)
    storage.drain()
    old_fp = fingerprint(b"old-content" + b"\x00" * 1013)
    assert storage.cluster.exists(storage.tier.chunk_pool, old_fp)
    storage.write_sync("obj1", b"new-content" + b"\xff" * 1013)
    storage.drain()
    # Sole referrer moved away: old chunk object is gone.
    assert not storage.cluster.exists(storage.tier.chunk_pool, old_fp)
    new_fp = fingerprint(b"new-content" + b"\xff" * 1013)
    assert storage.cluster.exists(storage.tier.chunk_pool, new_fp)


def test_shared_chunk_survives_one_dereference():
    storage = make_storage()
    storage.write_sync("obj1", b"s" * 1024)
    storage.write_sync("obj2", b"s" * 1024)
    storage.drain()
    fp = fingerprint(b"s" * 1024)
    storage.write_sync("obj1", b"t" * 1024)
    storage.drain()
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)
    assert storage.tier.chunk_refcount(fp) == 1
    assert storage.read_sync("obj2") == b"s" * 1024


def test_rewrite_same_content_is_stable():
    storage = make_storage()
    storage.write_sync("obj1", b"same" * 256)
    storage.drain()
    fp = fingerprint(b"same" * 256)
    storage.write_sync("obj1", b"same" * 256)
    storage.drain()
    assert storage.tier.chunk_refcount(fp) == 1
    assert storage.read_sync("obj1") == b"same" * 256


def test_cold_object_evicted_after_flush():
    storage = make_storage()
    storage.write_sync("obj1", b"c" * 2048)
    storage.drain()
    cmap = storage.tier.peek_chunk_map("obj1")
    assert all(not e.cached for e in cmap)
    # Data part is punched out: allocated bytes ~ 0.
    key = storage.tier.metadata_key("obj1")
    holder = next(
        o for o in storage.cluster.osds.values() if o.store.exists(key)
    )
    assert holder.store.get(key).allocated_bytes() == 0
    # Reads still work (redirected to the chunk pool).
    assert storage.read_sync("obj1") == b"c" * 2048


def test_hot_object_stays_cached():
    storage = make_storage(hit_count_threshold=2, hitset_period=0.1)
    storage.write_sync("hot", b"h" * 1024)
    storage.sim.run(until=storage.sim.now + 0.2)
    storage.read_sync("hot")  # second period access -> hot
    # Engine pass (not forced): should skip the hot object entirely.
    result = storage.cluster.run(
        storage.engine.process_object("hot", force=False)
    )
    assert result == "skipped_hot"
    assert storage.engine.stats.objects_skipped_hot == 1
    cmap = storage.tier.peek_chunk_map("hot")
    assert cmap.get(0).dirty  # untouched


def test_hot_object_flushed_but_kept_cached_when_forced():
    storage = make_storage(hit_count_threshold=2, hitset_period=0.1)
    storage.write_sync("hot", b"h" * 1024)
    storage.sim.run(until=storage.sim.now + 0.2)
    storage.read_sync("hot")
    storage.cluster.run(storage.engine.process_object("hot", force=True))
    cmap = storage.tier.peek_chunk_map("hot")
    entry = cmap.get(0)
    assert not entry.dirty
    assert entry.cached  # hot -> stays cached after flush
    assert entry.chunk_id == fingerprint(b"h" * 1024)


def test_background_engine_drains_on_its_own():
    storage = make_storage()
    storage.engine.start()
    for i in range(5):
        storage.cluster.run(storage.write(f"obj{i}", b"bg" * 512))
    storage.sim.run(until=storage.sim.now + 10.0)
    assert storage.tier.dirty_count == 0
    assert storage.engine.stats.objects_processed == 5
    storage.engine.stop()


def test_engine_start_stop_idempotent():
    storage = make_storage()
    storage.engine.start()
    storage.engine.start()
    assert storage.engine.running
    storage.engine.stop()
    storage.sim.run(until=storage.sim.now + 1.0)
    assert not storage.engine.running


def test_race_with_foreground_write_aborts_cleanly():
    """A write landing mid-dedup-pass must not lose data or leak refs."""
    storage = make_storage()
    storage.write_sync("obj1", b"v1" * 512)

    def racer():
        # Start the dedup pass and a foreground write concurrently.
        pass_proc = storage.sim.process(
            storage.engine.process_object("obj1", force=True)
        )
        write_proc = storage.sim.process(storage.write("obj1", b"v2" * 512))
        yield storage.sim.all_of([pass_proc, write_proc])
        return pass_proc.value

    result = storage.cluster.run(racer())
    if result == "raced":
        assert storage.engine.stats.objects_aborted_race == 1
        assert storage.tier.dirty_count >= 1
    storage.drain()
    assert storage.read_sync("obj1") == b"v2" * 512
    # No leaked chunk objects: only the live content's chunk remains.
    chunks = storage.cluster.list_objects(storage.tier.chunk_pool)
    assert chunks == [fingerprint(b"v2" * 512)]


def test_false_positive_refcount_defers_deref():
    storage = make_storage(refcount_mode="false_positive")
    storage.write_sync("obj1", b"A" * 1024)
    storage.drain()
    old_fp = fingerprint(b"A" * 1024)
    storage.write_sync("obj1", b"B" * 1024)
    storage.engine.tier.cluster.run(
        storage.engine.process_object("obj1", force=True)
    )
    # Deref was deferred: the dead chunk still exists (false positive).
    assert storage.cluster.exists(storage.tier.chunk_pool, old_fp)
    assert storage.engine.refcount.pending == 1
    # GC collects it.
    storage.drain()  # drain runs gc
    assert not storage.cluster.exists(storage.tier.chunk_pool, old_fp)
    assert storage.engine.refcount.pending == 0


def test_dirty_list_rebuild_from_chunk_maps():
    storage = make_storage()
    storage.write_sync("obj1", b"1" * 1024)
    storage.write_sync("obj2", b"2" * 1024)
    storage.drain()
    storage.write_sync("obj3", b"3" * 1024)
    # Simulate a restart: volatile dirty list lost.
    storage.tier._dirty_queue.clear()
    storage.tier._dirty_set.clear()
    found = storage.tier.rebuild_dirty_list()
    assert found == 1
    assert storage.tier.next_dirty() == "obj3"


def test_cache_capacity_enforced_by_demotion():
    storage = make_storage(
        cache_capacity_bytes=2048,
        hit_count_threshold=1,  # everything counts as hot -> stays cached
        hitset_period=10.0,
    )
    for i in range(6):
        storage.write_sync(f"obj{i}", bytes([i]) * 1024)
    storage.drain()
    assert storage.tier.cache.cached_bytes <= 2048
    assert storage.engine.stats.chunks_evicted >= 4
    # Every object still reads back correctly (demoted ones via chunk pool).
    for i in range(6):
        assert storage.read_sync(f"obj{i}") == bytes([i]) * 1024


def test_engine_stats_accumulate():
    storage = make_storage()
    storage.write_sync("a", b"unique-a" * 128)
    storage.write_sync("b", b"unique-b" * 128)
    storage.write_sync("c", b"unique-a" * 128)  # dup of a
    storage.drain()
    stats = storage.engine.stats
    assert stats.objects_processed == 3
    assert stats.chunks_flushed == 2
    assert stats.chunks_deduped == 1
    assert stats.bytes_deduped == 1024


def test_missing_object_is_handled():
    storage = make_storage()
    result = storage.cluster.run(storage.engine.process_object("ghost"))
    assert result == "missing"
