"""Tests for the foreground write/read paths (engine off)."""

import pytest

from repro.cluster import NoSuchObject, RadosCluster
from repro.core import CHUNK_MAP_XATTR, DedupConfig, DedupedStorage


@pytest.fixture
def storage():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    config = DedupConfig(chunk_size=1024, dedup_interval=0.01)
    return DedupedStorage(cluster, config, start_engine=False)


def test_write_read_roundtrip(storage):
    storage.write_sync("obj1", b"hello world")
    assert storage.read_sync("obj1") == b"hello world"


def test_multi_chunk_roundtrip(storage):
    data = bytes(range(256)) * 20  # 5 chunks of 1024
    storage.write_sync("obj1", data)
    assert storage.read_sync("obj1") == data


def test_offset_read(storage):
    data = b"0123456789" * 500
    storage.write_sync("obj1", data)
    assert storage.read_sync("obj1", offset=1000, length=100) == data[1000:1100]


def test_read_past_eof_is_short(storage):
    storage.write_sync("obj1", b"short")
    assert storage.read_sync("obj1", offset=3, length=100) == b"rt"
    assert storage.read_sync("obj1", offset=100, length=5) == b""


def test_read_missing_object_raises(storage):
    with pytest.raises(NoSuchObject):
        storage.read_sync("ghost")


def test_partial_overwrite(storage):
    storage.write_sync("obj1", b"a" * 3000)
    storage.write_sync("obj1", b"B" * 100, offset=1500)
    got = storage.read_sync("obj1")
    assert got[:1500] == b"a" * 1500
    assert got[1500:1600] == b"B" * 100
    assert got[1600:] == b"a" * 1400


def test_sparse_write_reads_zeros_in_gap(storage):
    storage.write_sync("obj1", b"head")
    storage.write_sync("obj1", b"tail", offset=5000)
    got = storage.read_sync("obj1")
    assert got[:4] == b"head"
    assert got[4:5000] == b"\x00" * 4996
    assert got[5000:] == b"tail"


def test_empty_write_is_noop(storage):
    storage.write_sync("obj1", b"")
    assert not storage.cluster.exists(storage.tier.metadata_pool, "obj1")


def test_negative_offset_rejected(storage):
    with pytest.raises(ValueError):
        storage.write_sync("obj1", b"x", offset=-1)
    storage.write_sync("obj1", b"x")
    with pytest.raises(ValueError):
        storage.read_sync("obj1", offset=-1)


def test_write_marks_dirty_and_cached(storage):
    storage.write_sync("obj1", b"z" * 2500)
    cmap = storage.tier.peek_chunk_map("obj1")
    assert cmap is not None
    assert len(cmap) == 3
    for entry in cmap:
        assert entry.cached and entry.dirty
        assert entry.chunk_id == ""  # fingerprinting deferred
    assert storage.tier.dirty_count == 1


def test_chunk_map_persisted_on_all_replicas(storage):
    storage.write_sync("obj1", b"y" * 1024)
    key = storage.tier.metadata_key("obj1")
    holders = [
        o for o in storage.cluster.osds.values() if o.store.exists(key)
    ]
    assert len(holders) == 2
    blobs = {bytes(o.store.getxattr(key, CHUNK_MAP_XATTR)) for o in holders}
    assert len(blobs) == 1  # identical on every copy (self-contained)


def test_tail_chunk_length_grows(storage):
    storage.write_sync("obj1", b"a" * 100)
    storage.write_sync("obj1", b"b" * 100, offset=100)
    cmap = storage.tier.peek_chunk_map("obj1")
    assert cmap.get(0).length == 200
    assert storage.read_sync("obj1") == b"a" * 100 + b"b" * 100


def test_write_after_flush_prereads_noncached_chunk(storage):
    """Partial overwrite of a flushed+evicted chunk pre-reads the
    missing bytes from the chunk pool (write path step 2)."""
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()  # flush; cold object -> evicted from cache
    cmap = storage.tier.peek_chunk_map("obj1")
    assert not cmap.get(0).cached
    storage.write_sync("obj1", b"MID", offset=500)
    got = storage.read_sync("obj1")
    assert got == b"a" * 500 + b"MID" + b"a" * 521


def test_full_chunk_overwrite_skips_preread(storage):
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()
    before = storage.tier.fg_window.total_ops
    storage.write_sync("obj1", b"b" * 1024)  # full cover: no pre-read
    assert storage.read_sync("obj1") == b"b" * 1024
    assert storage.tier.fg_window.total_ops == before + 2  # write + read


def test_foreground_ops_feed_rate_window(storage):
    storage.write_sync("obj1", b"x" * 1024)
    storage.read_sync("obj1")
    assert storage.tier.fg_window.total_ops == 2
    assert storage.tier.fg_window.total_bytes == 2048


def test_many_objects_roundtrip(storage):
    payloads = {f"obj{i}": bytes([i]) * (100 + i * 37) for i in range(30)}
    for oid, data in payloads.items():
        storage.write_sync(oid, data)
    for oid, data in payloads.items():
        assert storage.read_sync(oid) == data


def test_short_segment_read_pads_and_counts(storage):
    """A chunk-pool segment that comes back short (backing object
    truncated mid-flight) is zero-padded, never silently dropped, and
    the anomaly is counted for the harness."""
    from repro.fingerprint import fingerprint

    data = b"s" * 1024 + b"t" * 1024
    storage.write_sync("obj1", data)
    storage.drain()  # chunks now live in the chunk pool, entries evicted
    fp = fingerprint(b"t" * 1024)
    key = storage.cluster.object_key(storage.tier.chunk_pool, fp)
    for osd in storage.cluster.osds.values():
        if osd.store.exists(key):
            del osd.store.get(key).data[100:]  # truncate every replica
    assert storage.tier.stage.read_short_segments == 0
    got = storage.read_sync("obj1")
    assert storage.tier.stage.read_short_segments >= 1
    assert got == b"s" * 1024 + b"t" * 100 + b"\x00" * 924
