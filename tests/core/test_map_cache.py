"""Versioned decoded-map cache + incremental per-entry map commits.

The cache serves the metadata hot path; every test here guards one of
its invariants: hits only at the committed version, invalidation by
every owner that can change the stored map behind the cache (aborted
passes, deletes, GC, recovery, rebalance), and the v2 omap commit
format staying interchangeable with the legacy whole-blob format.
"""

import pytest

from repro.cluster import RadosCluster, rebalance_sync, recover_sync
from repro.core import (
    CHUNK_MAP_XATTR,
    DedupConfig,
    DedupedStorage,
    collect_garbage_sync,
)
from repro.core.objects import (
    MAP_OMAP_PREFIX,
    ChunkMapEntry,
    is_v2_map_header,
    map_entry_key,
)
from repro.fingerprint import fingerprint

CHUNK = 1024


def make_storage(**config_overrides):
    defaults = dict(chunk_size=CHUNK, dedup_interval=0.01)
    defaults.update(config_overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def load_map(storage, oid):
    """Drive tier.load_chunk_map synchronously."""
    return storage.cluster.run(storage.tier.load_chunk_map(oid))


def stored_meta(storage, oid):
    """The metadata object as stored on some up replica."""
    key = storage.tier.metadata_key(oid)
    for osd in storage.cluster.osds.values():
        if osd.up and osd.store.exists(key):
            return osd.store.get(key)
    raise AssertionError(f"no stored copy of {oid}")


def stored_map_keys(storage, oid):
    return sorted(
        k for k in stored_meta(storage, oid).omap if k.startswith(MAP_OMAP_PREFIX)
    )


# -- cache mechanics ---------------------------------------------------------


def test_committed_write_primes_cache():
    storage = make_storage()
    storage.write_sync("obj1", b"a" * 2 * CHUNK)
    stage = storage.tier.stage
    cmap = load_map(storage, "obj1")
    assert cmap is not None
    assert stage.map_cache_hits == 1
    assert stage.map_cache_misses == 0
    # Hits serve a private copy of the committed snapshot — equal
    # content, never the same instance (snapshot isolation).
    second = load_map(storage, "obj1")
    assert second is not cmap
    assert list(second) == list(cmap)
    assert stage.map_cache_hits == 2


def test_invalidation_forces_reload_then_recaches():
    storage = make_storage()
    storage.write_sync("obj1", b"b" * CHUNK)
    stage = storage.tier.stage
    storage.tier.invalidate_map_cache("obj1")
    assert stage.map_cache_invalidations == 1
    load_map(storage, "obj1")
    assert stage.map_cache_misses == 1
    load_map(storage, "obj1")
    assert stage.map_cache_hits == 1


def test_version_mismatch_is_not_a_hit():
    """A cached decode from an older version must not be served even if
    the entry is still sitting in the cache dict."""
    storage = make_storage()
    storage.write_sync("obj1", b"c" * CHUNK)
    storage.tier._map_versions["obj1"] += 1  # stale fence, cache entry kept
    load_map(storage, "obj1")
    assert storage.tier.stage.map_cache_hits == 0
    assert storage.tier.stage.map_cache_misses == 1


def test_lru_cap_evicts_oldest():
    storage = make_storage(map_cache_entries=1)
    storage.write_sync("a", b"a" * CHUNK)
    storage.write_sync("b", b"b" * CHUNK)
    assert len(storage.tier._map_cache) == 1
    load_map(storage, "a")  # miss: evicted by b's commit
    load_map(storage, "b")  # miss: evicted by a's reload
    stage = storage.tier.stage
    assert stage.map_cache_hits == 0
    assert stage.map_cache_misses == 2
    assert len(storage.tier._map_cache) == 1


def test_cache_disabled_always_reloads():
    storage = make_storage(map_cache_entries=0)
    storage.write_sync("obj1", b"d" * CHUNK)
    assert len(storage.tier._map_cache) == 0
    load_map(storage, "obj1")
    load_map(storage, "obj1")
    stage = storage.tier.stage
    assert stage.map_cache_hits == 0
    assert stage.map_cache_misses == 2
    assert storage.read_sync("obj1") == b"d" * CHUNK


def test_delete_invalidates_cache():
    storage = make_storage()
    storage.write_sync("obj1", b"e" * CHUNK)
    inv_before = storage.tier.stage.map_cache_invalidations
    storage.delete_sync("obj1")
    assert storage.tier.stage.map_cache_invalidations == inv_before + 1
    assert load_map(storage, "obj1") is None
    # Recreate under the same oid: must not resurrect the old map.
    storage.write_sync("obj1", b"f" * CHUNK)
    assert storage.read_sync("obj1") == b"f" * CHUNK
    assert load_map(storage, "obj1").get(0).length == CHUNK


# -- snapshot isolation & in-flight fences -----------------------------------


def finish(gen):
    """Drive a parked tier generator to completion outside the sim loop.

    The sim events it yields (disk-server grants, timeouts) carry no
    waiting process, so stepping past them by hand is safe; any orphaned
    queue entries fire as no-ops on the next sim run.
    """
    try:
        while True:
            gen.send(None)
    except StopIteration as stop:
        return stop.value


def test_loads_return_isolated_copies():
    """A caller mutating its loaded map must never pollute what other
    loads see — readers take no lock, so they rely on this isolation."""
    storage = make_storage()
    storage.write_sync("obj1", b"q" * CHUNK)
    a = load_map(storage, "obj1")
    b = load_map(storage, "obj1")
    assert a is not b
    assert a.get(0) is not b.get(0)
    # Mutate one copy the way a mid-flight dedup pass would.
    a.get(0).chunk_id = "bogus-fp"
    a.get(0).clear_valid()
    assert b.get(0).chunk_id == ""
    assert b.get(0).cached
    c = load_map(storage, "obj1")
    assert c.get(0).chunk_id == ""
    assert c.get(0).cached


def test_commit_during_load_yield_keeps_fresh_cache_entry():
    """A load miss parked on its disk read while a lock-holding writer
    commits must neither crash on a torn header/omap decode nor
    overwrite the freshly committed cache entry with its stale one."""
    storage = make_storage()
    tier = storage.tier
    storage.write_sync("obj1", b"r" * 2 * CHUNK)
    tier.invalidate_map_cache("obj1")  # force the next load to miss

    gen = tier.load_chunk_map("obj1")
    next(gen)  # parked on the simulated disk read

    # Emulate the racing writer's commit landing during the yield: the
    # stored header + omap gain a third entry and the version bumps.
    from repro.core.objects import decode_stored_map

    primary = storage.cluster._primary(tier.metadata_pool, "obj1")
    obj = primary.store.get(tier.metadata_key("obj1"))
    new_map = decode_stored_map(obj.xattrs[CHUNK_MAP_XATTR], obj.omap)
    new_map.set(ChunkMapEntry(2 * CHUNK, CHUNK))
    obj.xattrs[CHUNK_MAP_XATTR] = new_map.serialize_header_v2(
        tier.map_version("obj1") + 1
    )
    obj.omap[map_entry_key(2)] = new_map.get(2).pack()
    tier.note_map_committed("obj1", new_map)

    # The resumed loader decodes its pre-yield snapshot: a consistent
    # 2-entry map, not a ValueError from old header + new omap.
    stale = finish(gen)
    assert len(stale) == 2
    # ... and the cache still serves the 3-entry committed map.
    version, cached = tier._map_cache["obj1"]
    assert version == tier.map_version("obj1")
    assert len(cached) == 3
    assert len(load_map(storage, "obj1")) == 3


def test_invalidate_all_fences_version_zero_load():
    """invalidate_map_cache(None) must fence in-flight decodes even for
    objects with no version entry (cached purely via load misses, e.g.
    after a tier restart) — they sit at version 0 before *and* after."""
    storage = make_storage()
    storage.write_sync("obj1", b"s" * CHUNK)
    tier = storage.tier
    # Forget commit history: the object is now known only to the store.
    tier._map_cache.clear()
    tier._map_versions.clear()

    gen = tier.load_chunk_map("obj1")
    next(gen)  # parked on the disk read, version 0 captured
    tier.invalidate_map_cache()  # repair/rebalance fence mid-flight
    cmap = finish(gen)
    assert cmap is not None
    # The pre-fence decode must not have re-installed itself.
    assert "obj1" not in tier._map_cache
    miss_before = tier.stage.map_cache_misses
    load_map(storage, "obj1")
    assert tier.stage.map_cache_misses == miss_before + 1


def test_read_during_batched_pass_is_consistent():
    """A lock-free reader racing a batched dedup pass sees the committed
    snapshot, not the pass's half-re-pointed private map."""
    from repro.core.io_path import read_path

    storage = make_storage()
    data = bytes(range(256)) * (4 * CHUNK // 256)
    storage.write_sync("obj1", data)

    def scenario():
        pass_proc = storage.sim.process(
            storage.engine.process_object("obj1", force=True)
        )
        # Land the read mid-pass: entries in the pass's copy are already
        # re-pointed at chunk objects its batch has not committed yet.
        yield storage.sim.timeout(1e-5)
        read_proc = storage.sim.process(read_path(storage.tier, "obj1"))
        yield pass_proc
        yield read_proc
        return pass_proc.value, read_proc.value

    result, got = storage.cluster.run(scenario())
    assert result == "done"
    assert got == data
    assert storage.read_sync("obj1") == data


# -- stale-map regressions: every owner that rewrites the stored map ---------


def test_stale_map_after_aborted_pass():
    """A dedup pass that races a foreground mutation mutates the decoded
    map in memory without committing; the next load must see the stored
    truth, not the polluted decode."""
    storage = make_storage()
    storage.write_sync("obj1", b"v1" * 512)
    inv_before = storage.tier.stage.map_cache_invalidations

    def racer():
        pass_proc = storage.sim.process(
            storage.engine.process_object("obj1", force=True)
        )
        # Let the pass start (load the map, begin staging), then mutate
        # the object's seq from under it — deterministic "raced".
        yield storage.sim.timeout(1e-6)
        storage.tier.bump_seq("obj1")
        yield pass_proc
        return pass_proc.value

    result = storage.cluster.run(racer())
    assert result == "raced"
    assert storage.tier.stage.map_cache_invalidations > inv_before
    # Reload shows the committed state: still dirty, no chunk id.
    cmap = load_map(storage, "obj1")
    entry = cmap.get(0)
    assert entry.dirty
    assert entry.chunk_id == ""
    # And the object still dedups fine afterwards.
    storage.drain()
    assert storage.read_sync("obj1") == b"v1" * 512


def test_stale_map_after_gc():
    storage = make_storage()
    storage.write_sync("obj1", b"g" * 2 * CHUNK)
    storage.drain()
    load_map(storage, "obj1")
    assert len(storage.tier._map_cache) > 0
    inv_before = storage.tier.stage.map_cache_invalidations
    miss_before = storage.tier.stage.map_cache_misses
    collect_garbage_sync(storage.tier)
    assert storage.tier.stage.map_cache_invalidations > inv_before
    assert len(storage.tier._map_cache) == 0
    load_map(storage, "obj1")
    assert storage.tier.stage.map_cache_misses == miss_before + 1
    assert storage.read_sync("obj1") == b"g" * 2 * CHUNK


def test_stale_map_after_recovery():
    storage = make_storage()
    storage.write_sync("obj1", b"h" * CHUNK)
    storage.drain()
    load_map(storage, "obj1")
    miss_before = storage.tier.stage.map_cache_misses
    recover_sync(storage.cluster)
    load_map(storage, "obj1")
    assert storage.tier.stage.map_cache_misses == miss_before + 1
    assert storage.read_sync("obj1") == b"h" * CHUNK


def test_repair_listener_exposes_out_of_band_map_change():
    """If repair rewrites the stored map behind the tier's back, the
    notify hook must make the change visible on the next load."""
    storage = make_storage()
    storage.write_sync("obj1", b"i" * CHUNK)
    assert load_map(storage, "obj1").get(0).dirty
    # Out-of-band rewrite on every replica: entry length shrunk to 7.
    from repro.core.objects import ChunkMap

    doctored = ChunkMap(CHUNK)
    doctored.set(ChunkMapEntry(0, 7))
    blob = doctored.serialize()
    key = storage.tier.metadata_key("obj1")
    for osd in storage.cluster.osds.values():
        if osd.store.exists(key):
            obj = osd.store.get(key)
            obj.xattrs[CHUNK_MAP_XATTR] = blob
            for k in list(obj.omap):
                if k.startswith(MAP_OMAP_PREFIX):
                    del obj.omap[k]
    # Without the notification the cache would still serve the old map.
    storage.cluster.notify_repaired()
    assert load_map(storage, "obj1").get(0).length == 7


def test_stale_map_after_rebalance():
    storage = make_storage()
    for i in range(8):
        storage.write_sync(f"obj{i}", bytes([i]) * CHUNK)
    storage.drain()
    for i in range(8):
        load_map(storage, f"obj{i}")
    miss_before = storage.tier.stage.map_cache_misses
    diff = storage.cluster.expand("host4", 2)
    assert diff.pgs_remapped > 0
    rebalance_sync(storage.cluster)
    assert len(storage.tier._map_cache) == 0
    load_map(storage, "obj0")
    assert storage.tier.stage.map_cache_misses == miss_before + 1
    for i in range(8):
        assert storage.read_sync(f"obj{i}") == bytes([i]) * CHUNK


# -- incremental (v2) commit format ------------------------------------------


def test_incremental_commit_stores_v2_header_and_omap():
    storage = make_storage()
    storage.write_sync("obj1", b"j" * 4 * CHUNK)
    obj = stored_meta(storage, "obj1")
    assert is_v2_map_header(obj.xattrs[CHUNK_MAP_XATTR])
    assert stored_map_keys(storage, "obj1") == [map_entry_key(i) for i in range(4)]
    assert storage.read_sync("obj1") == b"j" * 4 * CHUNK


def test_small_update_serializes_only_touched_entries():
    storage = make_storage()
    storage.write_sync("obj1", b"k" * 8 * CHUNK)
    stage = storage.tier.stage
    before = stage.map_entries_serialized
    # Patch 16 bytes inside chunk 5: exactly one entry is re-serialized.
    storage.write_sync("obj1", b"P" * 16, offset=5 * CHUNK + 100)
    assert stage.map_entries_serialized == before + 1
    assert stage.map_commits_incremental >= 2
    assert stage.map_commits_full == 0
    # Stored map still covers all 8 chunks and reads back correctly.
    assert len(stored_map_keys(storage, "obj1")) == 8
    expected = bytearray(b"k" * 8 * CHUNK)
    expected[5 * CHUNK + 100 : 5 * CHUNK + 116] = b"P" * 16
    assert storage.read_sync("obj1") == bytes(expected)


def test_dedup_pass_commits_only_processed_entries():
    storage = make_storage()
    storage.write_sync("obj1", b"l" * 4 * CHUNK)
    stage = storage.tier.stage
    before = stage.map_entries_serialized
    storage.drain()
    # The pass touches each of the 4 entries once (chunk-id fill); it
    # must not rewrite the map wholesale per entry.
    delta = stage.map_entries_serialized - before
    assert delta <= 8  # flush + eviction commits, all incremental
    assert stage.map_commits_full == 0
    fp = fingerprint(b"l" * CHUNK)
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)


def test_whole_map_mode_keeps_v1_format():
    storage = make_storage(incremental_map_commits=False)
    storage.write_sync("obj1", b"m" * 3 * CHUNK)
    storage.drain()
    obj = stored_meta(storage, "obj1")
    assert obj.xattrs[CHUNK_MAP_XATTR][:4] == b"CMAP"
    assert stored_map_keys(storage, "obj1") == []
    stage = storage.tier.stage
    assert stage.map_commits_incremental == 0
    assert stage.map_commits_full > 0
    assert storage.read_sync("obj1") == b"m" * 3 * CHUNK


def test_downgrade_from_v2_clears_omap_records():
    """Turning incremental commits off after a v2 era must remove the
    per-entry records, or a later upgrade would resurrect stale ones."""
    storage = make_storage()
    storage.write_sync("obj1", b"n" * 2 * CHUNK)
    assert len(stored_map_keys(storage, "obj1")) == 2
    storage.tier.config.incremental_map_commits = False
    storage.write_sync("obj1", b"o" * 2 * CHUNK)
    obj = stored_meta(storage, "obj1")
    assert obj.xattrs[CHUNK_MAP_XATTR][:4] == b"CMAP"
    assert stored_map_keys(storage, "obj1") == []
    assert storage.read_sync("obj1") == b"o" * 2 * CHUNK


def test_v1_to_v2_upgrade_writes_every_entry():
    """A map decoded from a legacy blob has no touched history: the
    first incremental commit must write all entries."""
    storage = make_storage(incremental_map_commits=False)
    storage.write_sync("obj1", b"p" * 3 * CHUNK)
    assert stored_map_keys(storage, "obj1") == []
    storage.tier.config.incremental_map_commits = True
    storage.tier.invalidate_map_cache("obj1")  # force decode from v1 blob
    storage.write_sync("obj1", b"q" * 16, offset=CHUNK + 5)
    # Upgrade: header flipped to v2 and every entry materialised.
    obj = stored_meta(storage, "obj1")
    assert is_v2_map_header(obj.xattrs[CHUNK_MAP_XATTR])
    assert len(stored_map_keys(storage, "obj1")) == 3
    expected = bytearray(b"p" * 3 * CHUNK)
    expected[CHUNK + 5 : CHUNK + 21] = b"q" * 16
    assert storage.read_sync("obj1") == bytes(expected)


def test_config_rejects_negative_cache_size():
    with pytest.raises(ValueError):
        DedupConfig(map_cache_entries=-1)
