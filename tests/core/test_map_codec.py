"""Chunk-map codec: pack/unpack and serialize/deserialize round-trips.

Covers the legacy whole-blob (v1, ``CMAP``) format, the incremental
per-entry omap (v2, ``CMP2``) format, the format-dispatching
``decode_stored_map`` compatibility reader, and the ``__slots__`` /
string-interning satellite work.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objects import (
    CHUNK_MAP_ENTRY_BYTES,
    MAP_OMAP_PREFIX,
    MAX_VALID_RANGES,
    ChunkMap,
    ChunkMapEntry,
    ChunkRef,
    decode_stored_map,
    is_v2_map_header,
    map_entry_key,
    merge_ranges,
)

CHUNK = 4096


def entries_equal(a: ChunkMap, b: ChunkMap) -> bool:
    return a.chunk_size == b.chunk_size and list(a) == list(b)


@st.composite
def chunk_entries(draw, chunk_size=CHUNK, index=None):
    idx = draw(st.integers(0, 500)) if index is None else index
    length = draw(st.integers(1, chunk_size))
    chunk_id = draw(
        st.one_of(st.just(""), st.text("0123456789abcdef", min_size=1, max_size=40))
    )
    dirty = draw(st.booleans())
    cached = draw(st.booleans())
    if cached:
        # At least one non-degenerate range; up to the tracking cap.
        n = draw(st.integers(1, MAX_VALID_RANGES))
        ranges = []
        for _ in range(n):
            start = draw(st.integers(0, length - 1))
            end = draw(st.integers(start + 1, length))
            ranges.append((start, end))
        valid = tuple(ranges)
    else:
        valid = ()
    return ChunkMapEntry(
        offset=idx * chunk_size,
        length=length,
        chunk_id=chunk_id,
        cached=cached,
        dirty=dirty,
        valid=valid,
    )


@given(chunk_entries())
@settings(max_examples=200)
def test_entry_pack_unpack_roundtrip(entry):
    blob = entry.pack()
    assert len(blob) == CHUNK_MAP_ENTRY_BYTES
    assert ChunkMapEntry.unpack(blob) == entry


@st.composite
def chunk_maps(draw):
    cmap = ChunkMap(CHUNK)
    indices = draw(st.lists(st.integers(0, 100), max_size=12, unique=True))
    for idx in indices:
        cmap.set(draw(chunk_entries(index=idx)))
    return cmap


@given(chunk_maps())
@settings(max_examples=100)
def test_map_serialize_deserialize_roundtrip(cmap):
    got = ChunkMap.deserialize(cmap.serialize())
    assert entries_equal(got, cmap)
    # A freshly decoded map carries no pending mutations.
    assert got.touched_indices() == []
    assert not got.stored_v2


@given(chunk_maps())
@settings(max_examples=100)
def test_map_v2_roundtrip_via_header_and_omap(cmap):
    header = cmap.serialize_header_v2(version=7)
    assert is_v2_map_header(header)
    omap = cmap.omap_entries()
    # Foreign omap keys (refs, bookkeeping) must be ignored by decode.
    omap["unrelated.key"] = b"zzz"
    got = decode_stored_map(header, omap)
    assert entries_equal(got, cmap)
    assert got.stored_v2
    assert got.touched_indices() == []


@given(chunk_maps())
@settings(max_examples=100)
def test_old_format_blob_compat(cmap):
    """decode_stored_map dispatches v1 blobs to the legacy reader, even
    with stale v2 omap records sitting next to them."""
    blob = cmap.serialize()
    assert not is_v2_map_header(blob)
    stale_omap = {map_entry_key(999): b"\x00" * CHUNK_MAP_ENTRY_BYTES}
    got = decode_stored_map(blob, stale_omap)
    assert entries_equal(got, cmap)
    assert not got.stored_v2


@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
            lambda t: (min(t), max(t))
        ),
        max_size=8,
    )
)
def test_merge_ranges_sorted_disjoint_and_drops_empty(ranges):
    merged = merge_ranges(ranges)
    # Zero-length input ranges vanish; output ranges are non-empty,
    # sorted, disjoint, and non-adjacent.
    for start, end in merged:
        assert end > start
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert s2 > e1
    covered = set()
    for start, end in ranges:
        covered |= set(range(start, end))
    merged_covered = set()
    for start, end in merged:
        merged_covered |= set(range(start, end))
    assert merged_covered == covered


def test_zero_length_valid_ranges_are_dropped():
    entry = ChunkMapEntry(0, 100, cached=True, valid=((5, 5), (10, 20)))
    assert entry.valid == ((10, 20),)
    with pytest.raises(ValueError):
        # All ranges degenerate -> cached entry with no valid bytes.
        ChunkMapEntry(0, 100, cached=True, valid=((5, 5),))


def test_v2_header_count_mismatch_rejected():
    cmap = ChunkMap(CHUNK)
    cmap.set(ChunkMapEntry(0, 10))
    header = cmap.serialize_header_v2(version=1)
    with pytest.raises(ValueError):
        ChunkMap.from_stored_v2(header, {})


def test_map_entry_key_sorts_like_indices():
    keys = [map_entry_key(i) for i in (0, 1, 9, 10, 99, 1234)]
    assert keys == sorted(keys)
    assert all(k.startswith(MAP_OMAP_PREFIX) for k in keys)


def test_touched_tracking_drives_incremental_writer():
    cmap = ChunkMap(CHUNK)
    for i in range(4):
        cmap.set(ChunkMapEntry(i * CHUNK, CHUNK))
    cmap.clear_touched()
    assert cmap.touched_indices() == []
    cmap.set(ChunkMapEntry(2 * CHUNK, CHUNK, dirty=False))
    cmap.get(0).dirty = False
    cmap.mark_touched(0)
    assert cmap.touched_indices() == [0, 2]
    entries = cmap.omap_entries(cmap.touched_indices())
    assert set(entries) == {map_entry_key(0), map_entry_key(2)}
    assert all(len(v) == CHUNK_MAP_ENTRY_BYTES for v in entries.values())


def test_entry_and_ref_have_slots_not_dict():
    entry = ChunkMapEntry(0, 10, "ab")
    ref = ChunkRef(1, "oid", 0)
    assert not hasattr(entry, "__dict__")
    assert not hasattr(ref, "__dict__")
    with pytest.raises(AttributeError):
        entry.bogus_attribute = 1


def test_unpack_interns_chunk_ids():
    a = ChunkMapEntry(0, 10, chunk_id="feedfacefeedface").pack()
    b = ChunkMapEntry(CHUNK, 10, chunk_id="feedfacefeedface").pack()
    ea, eb = ChunkMapEntry.unpack(a), ChunkMapEntry.unpack(b)
    assert ea.chunk_id is eb.chunk_id  # sys.intern collapsed duplicates


def test_v2_header_encodes_version_and_count():
    cmap = ChunkMap(CHUNK)
    cmap.set(ChunkMapEntry(0, 10))
    cmap.set(ChunkMapEntry(CHUNK, 20))
    header = cmap.serialize_header_v2(version=42)
    magic, chunk_size, count, version = struct.unpack(">4sIIQ", header)
    assert magic == b"CMP2"
    assert chunk_size == CHUNK
    assert count == 2
    assert version == 42
