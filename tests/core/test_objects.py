"""Tests for chunk map and reference set schema/serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CHUNK_MAP_ENTRY_BYTES,
    REFERENCE_ENTRY_BYTES,
    ChunkMap,
    ChunkMapEntry,
    ChunkRef,
    RefSet,
)


def test_entry_pack_unpack_roundtrip():
    entry = ChunkMapEntry(
        offset=65536, length=32768, chunk_id="ab" * 20, cached=True, dirty=False
    )
    assert ChunkMapEntry.unpack(entry.pack()) == entry


def test_entry_packs_to_exact_paper_size():
    entry = ChunkMapEntry(offset=0, length=100, chunk_id="ff" * 20)
    assert len(entry.pack()) == CHUNK_MAP_ENTRY_BYTES == 150


def test_entry_flag_combinations():
    for cached in (True, False):
        for dirty in (True, False):
            e = ChunkMapEntry(0, 10, "ab", cached=cached, dirty=dirty)
            back = ChunkMapEntry.unpack(e.pack())
            assert back.cached == cached and back.dirty == dirty


def test_entry_rejects_huge_chunk_id():
    entry = ChunkMapEntry(offset=0, length=1, chunk_id="x" * 200)
    with pytest.raises(ValueError):
        entry.pack()


def test_chunk_map_set_get():
    cmap = ChunkMap(chunk_size=100)
    cmap.set(ChunkMapEntry(offset=200, length=100, chunk_id="c2"))
    assert cmap.get(2).chunk_id == "c2"
    assert cmap.get(0) is None


def test_chunk_map_alignment_enforced():
    cmap = ChunkMap(chunk_size=100)
    with pytest.raises(ValueError):
        cmap.set(ChunkMapEntry(offset=150, length=50))
    with pytest.raises(ValueError):
        cmap.set(ChunkMapEntry(offset=100, length=101))
    with pytest.raises(ValueError):
        cmap.set(ChunkMapEntry(offset=100, length=0))


def test_chunk_map_logical_size():
    cmap = ChunkMap(chunk_size=100)
    assert cmap.logical_size() == 0
    cmap.set(ChunkMapEntry(offset=0, length=100))
    cmap.set(ChunkMapEntry(offset=200, length=42))
    assert cmap.logical_size() == 242


def test_chunk_map_dirty_and_cached_indices():
    cmap = ChunkMap(chunk_size=10)
    cmap.set(ChunkMapEntry(offset=0, length=10, cached=True, dirty=True))
    cmap.set(ChunkMapEntry(offset=10, length=10, cached=False, dirty=False))
    cmap.set(ChunkMapEntry(offset=20, length=10, cached=True, dirty=False))
    assert cmap.dirty_indices() == [0]
    assert cmap.cached_indices() == [0, 2]
    assert not cmap.all_clean()


def test_chunk_map_serialize_roundtrip():
    cmap = ChunkMap(chunk_size=32768)
    for i in range(5):
        cmap.set(
            ChunkMapEntry(
                offset=i * 32768,
                length=32768 if i < 4 else 1000,
                chunk_id=f"{i:02x}" * 10,
                cached=i % 2 == 0,
                dirty=i % 3 == 0,
            )
        )
    blob = cmap.serialize()
    back = ChunkMap.deserialize(blob)
    assert back.chunk_size == cmap.chunk_size
    assert list(back) == list(cmap)


def test_chunk_map_serialized_size_matches_paper_accounting():
    cmap = ChunkMap(chunk_size=32768)
    for i in range(7):
        cmap.set(ChunkMapEntry(offset=i * 32768, length=32768))
    assert len(cmap.serialize()) == cmap.serialized_bytes()
    # 150 bytes per entry + constant header.
    assert cmap.serialized_bytes() - ChunkMap(32768).serialized_bytes() == 7 * 150


def test_chunk_map_bad_magic():
    with pytest.raises(ValueError):
        ChunkMap.deserialize(b"NOPE" + b"\x00" * 20)


def test_refset_add_discard():
    refs = RefSet()
    r1 = ChunkRef(pool_id=1, source_oid="obj1", offset=0)
    refs.add(r1)
    refs.add(r1)  # idempotent
    assert len(refs) == 1
    refs.discard(r1)
    assert len(refs) == 0
    refs.discard(r1)  # idempotent


def test_refset_serialize_roundtrip():
    refs = RefSet(
        [
            ChunkRef(1, "a", 0),
            ChunkRef(1, "a", 32768),
            ChunkRef(2, "other-object", 65536),
        ]
    )
    back = RefSet.deserialize(refs.serialize())
    assert sorted(back) == sorted(refs)


def test_refset_record_size_matches_paper():
    refs = RefSet([ChunkRef(1, "x", 0)])
    assert len(refs.serialize()) == REFERENCE_ENTRY_BYTES == 64
    assert refs.serialized_bytes() == 64


def test_refset_long_oid_hashed_not_crashing():
    long_name = "v" * 300
    refs = RefSet([ChunkRef(1, long_name, 8)])
    blob = refs.serialize()
    assert len(blob) == 64
    back = RefSet.deserialize(blob)
    assert len(back) == 1  # identity preserved via hash, not the string


@given(
    entries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),  # index
            st.integers(min_value=1, max_value=4096),  # length
            st.booleans(),
            st.booleans(),
        ),
        max_size=30,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=50)
def test_chunk_map_roundtrip_property(entries):
    cmap = ChunkMap(chunk_size=4096)
    for idx, length, cached, dirty in entries:
        cmap.set(
            ChunkMapEntry(
                offset=idx * 4096,
                length=length,
                chunk_id=f"{idx:040x}",
                cached=cached,
                dirty=dirty,
            )
        )
    assert list(ChunkMap.deserialize(cmap.serialize())) == list(cmap)


@given(
    refs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**31),
            st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=40),
            st.integers(min_value=0, max_value=2**40),
        ),
        max_size=20,
    )
)
@settings(max_examples=50)
def test_refset_roundtrip_property(refs):
    refset = RefSet([ChunkRef(p, o, off) for p, o, off in refs])
    back = RefSet.deserialize(refset.serialize())
    assert sorted(back) == sorted(refset)
