"""Tests for partially-cached chunks (deferred read-modify-write).

The paper keeps foreground partial writes at original-system cost by
writing only the new bytes into the metadata object and letting the
background engine merge them with the old chunk ("reading data for
flush").  These tests pin that behaviour down.
"""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.core.objects import MAX_VALID_RANGES, ChunkMapEntry, merge_ranges
from repro.fingerprint import fingerprint


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


# --------------------------------------------------------- merge_ranges


def test_merge_ranges_coalesces():
    assert merge_ranges([(0, 5), (5, 10)]) == ((0, 10),)
    assert merge_ranges([(3, 7), (0, 4)]) == ((0, 7),)
    assert merge_ranges([(0, 2), (5, 8)]) == ((0, 2), (5, 8))
    assert merge_ranges([(1, 1), (2, 2)]) == ()


def test_entry_valid_roundtrip_via_pack():
    entry = ChunkMapEntry(
        offset=0, length=1024, chunk_id="ab" * 20, cached=True,
        dirty=True, valid=((100, 200), (300, 400)),
    )
    back = ChunkMapEntry.unpack(entry.pack())
    assert back.valid == ((100, 200), (300, 400))
    assert not back.fully_cached()
    assert back.missing_ranges() == ((0, 100), (200, 300), (400, 1024))


def test_entry_invariants():
    with pytest.raises(ValueError):
        ChunkMapEntry(offset=0, length=10, cached=False, valid=((0, 5),))
    with pytest.raises(ValueError):
        ChunkMapEntry(offset=0, length=10, cached=True, valid=())


def test_add_valid_range_budget():
    entry = ChunkMapEntry(offset=0, length=1000, chunk_id="aa", cached=False,
                          dirty=False, valid=())
    for i in range(MAX_VALID_RANGES):
        assert entry.add_valid(i * 100, i * 100 + 10)
    assert not entry.add_valid(900, 910)  # fifth disjoint range: refused
    assert entry.add_valid(0, 500)  # merging write is fine


# ------------------------------------------------- deferred RMW behaviour


def test_partial_write_to_flushed_chunk_defers_preread():
    storage = make_storage()
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()  # flushed + evicted
    old_fp = fingerprint(b"a" * 1024)

    t0 = storage.sim.now
    storage.write_sync("obj1", b"MID", offset=500)
    partial_elapsed = storage.sim.now - t0
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.dirty
    assert entry.valid == ((500, 503),)  # only the written bytes cached
    assert entry.chunk_id == old_fp  # old chunk still referenced

    # Cost comparison: the partial write must not have read the chunk
    # object (compare against a fresh full-chunk write).
    t0 = storage.sim.now
    storage.write_sync("obj2", b"z" * 3)
    full_elapsed = storage.sim.now - t0
    assert partial_elapsed < 2.0 * full_elapsed


def test_read_merges_cache_and_chunk_pool():
    storage = make_storage()
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()
    storage.write_sync("obj1", b"MID", offset=500)
    got = storage.read_sync("obj1")
    assert got == b"a" * 500 + b"MID" + b"a" * 521


def test_engine_merges_on_flush():
    storage = make_storage()
    storage.write_sync("obj1", b"a" * 1024)
    storage.drain()
    old_fp = fingerprint(b"a" * 1024)
    storage.write_sync("obj1", b"MID", offset=500)
    storage.drain()
    merged = b"a" * 500 + b"MID" + b"a" * 521
    new_fp = fingerprint(merged)
    assert not storage.cluster.exists(storage.tier.chunk_pool, old_fp)
    assert storage.cluster.exists(storage.tier.chunk_pool, new_fp)
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.chunk_id == new_fp
    assert not entry.dirty and not entry.cached
    assert storage.read_sync("obj1") == merged


def test_multiple_partial_writes_tracked_and_merged():
    storage = make_storage()
    storage.write_sync("obj1", bytes(range(256)) * 4)  # 1024 bytes
    storage.drain()
    storage.write_sync("obj1", b"XX", offset=100)
    storage.write_sync("obj1", b"YY", offset=800)
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.valid == ((100, 102), (800, 802))
    expected = bytearray(bytes(range(256)) * 4)
    expected[100:102] = b"XX"
    expected[800:802] = b"YY"
    assert storage.read_sync("obj1") == bytes(expected)
    storage.drain()
    assert storage.read_sync("obj1") == bytes(expected)


def test_fragmented_writes_fall_back_to_preread():
    storage = make_storage()
    storage.write_sync("obj1", b"b" * 1024)
    storage.drain()
    expected = bytearray(b"b" * 1024)
    # Five disjoint tiny writes exceed the range budget; the last one
    # coalesces via pre-read, and content stays correct throughout.
    for i, off in enumerate([0, 200, 400, 600, 800]):
        payload = bytes([i + 65]) * 10
        storage.write_sync("obj1", payload, offset=off)
        expected[off : off + 10] = payload
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.fully_cached()  # pre-read coalesced everything
    assert storage.read_sync("obj1") == bytes(expected)


def test_partial_write_extending_tail_chunk():
    storage = make_storage()
    storage.write_sync("obj1", b"t" * 400)  # tail chunk, length 400
    storage.drain()
    storage.write_sync("obj1", b"EXT", offset=600)  # grow with a gap
    got = storage.read_sync("obj1")
    assert got == b"t" * 400 + b"\x00" * 200 + b"EXT"
    storage.drain()
    assert storage.read_sync("obj1") == b"t" * 400 + b"\x00" * 200 + b"EXT"


def test_hot_object_partial_write_stays_cached_after_flush():
    storage = make_storage(hit_count_threshold=1, hitset_period=10.0)
    storage.write_sync("obj1", b"c" * 1024)
    storage.drain()  # hot (threshold 1) -> stays fully cached
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.fully_cached()
    storage.write_sync("obj1", b"Q", offset=10)
    storage.drain()
    entry = storage.tier.peek_chunk_map("obj1").get(0)
    assert entry.fully_cached() and not entry.dirty
    expected = b"c" * 10 + b"Q" + b"c" * 1013
    assert storage.read_sync("obj1") == expected
