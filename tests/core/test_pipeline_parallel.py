"""Engine flush pipeline with a parallel fingerprint stage.

The flush pipeline is chunk -> sharded fingerprint fan-out -> ordered
gather -> per-PG batched commit.  These tests pin the determinism
contract (``fingerprint_workers > 1`` is observationally identical to
serial hashing, including under injected faults) and the drain/abort
hygiene (no FingerprintPool future may outlive the pass that staged it).
"""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage, scrub_sync
from repro.faults import FaultInjector, FaultPlan
from repro.faults.errors import TransientOpError
from repro.fingerprint import fingerprint


def make_storage(fingerprint_workers=1, **config_overrides):
    defaults = dict(
        chunk_size=1024,
        dedup_interval=0.01,
        hitset_period=0.5,
        fingerprint_workers=fingerprint_workers,
    )
    defaults.update(config_overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


BLOCKS = [bytes([b]) * 512 for b in (7, 33, 99, 160, 255)]


def build_objects(pattern):
    """Objects assembled from shared blocks -> cross-object duplicates."""
    return {
        f"obj{i}": b"".join(BLOCKS[j % len(BLOCKS)] for j in indices)
        for i, indices in enumerate(pattern)
    }


def flush_all(storage, objects):
    for oid, data in objects.items():
        storage.write_sync(oid, data)
    storage.drain()


def assert_equivalent(parallel, serial, objects):
    fps = {fingerprint(data) for data in objects.values()}
    for fp in fps:
        assert parallel.tier.chunk_refcount(fp) == serial.tier.chunk_refcount(fp)
    assert parallel.space_report() == serial.space_report()
    for oid, data in objects.items():
        assert parallel.read_sync(oid) == data
    assert scrub_sync(parallel.tier).clean


def test_parallel_fingerprint_matches_serial():
    objects = build_objects(
        [(0, 1, 2, 3), (0, 1), (2, 3, 4), (4, 4, 0), (1, 2, 3, 4)]
    )
    parallel = make_storage(fingerprint_workers=4)
    serial = make_storage(fingerprint_workers=1)
    assert parallel.engine.fingerprint_pool.parallel
    assert not serial.engine.fingerprint_pool.parallel
    flush_all(parallel, objects)
    flush_all(serial, objects)
    assert_equivalent(parallel, serial, objects)
    # The parallel side actually routed digests through the pool.
    assert parallel.engine.fingerprint_pool.stats.tasks > 0
    assert parallel.tier.stage.fingerprint_workers == 4


def test_start_overrides_fingerprint_workers():
    storage = make_storage(fingerprint_workers=1)
    storage.engine.start(fingerprint_workers=3)
    try:
        assert storage.engine.fingerprint_pool.workers == 3
    finally:
        storage.engine.stop()
        storage.engine.set_fingerprint_workers(None)
    # Resetting drops back to the config value.
    assert storage.engine.fingerprint_pool.workers == 1


# -- abort hygiene: no future outlives its pass -----------------------------


def test_aborted_pass_leaves_no_outstanding_futures(monkeypatch):
    """A retryable fault mid-commit must settle every staged future.

    Sequential-commit mode faults between the ordered gather's first and
    second chunk, the worst case: some handles consumed, some not.  The
    abort path (``_abandon_staged``) has to settle the stragglers so the
    pool holds no chunk payload from the dead pass; the later drain then
    converges to a clean scrub.
    """
    storage = make_storage(
        fingerprint_workers=4,
        batch_refs=False,
        refset_cache_entries=0,
        chunk_bloom_capacity=0,
    )
    objects = build_objects([(0, 1, 2, 3, 4, 0, 1, 2)])  # 4 dirty chunks
    for oid, data in objects.items():
        storage.write_sync(oid, data)

    tier = storage.tier
    real_chunk_ref = tier.chunk_ref
    calls = {"n": 0}

    def flaky_chunk_ref(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise TransientOpError(0, "chunk_ref")
        return real_chunk_ref(*args, **kwargs)

    monkeypatch.setattr(tier, "chunk_ref", flaky_chunk_ref)
    result = storage.cluster.run(storage.engine.process_object("obj0", force=True))
    assert result == "faulted"
    assert calls["n"] == 2  # the fault hit mid-gather, handles were staged
    assert storage.engine.fingerprint_pool.outstanding == 0
    assert storage.engine.stats.objects_requeued_fault == 1

    monkeypatch.setattr(tier, "chunk_ref", real_chunk_ref)
    storage.drain()
    assert storage.engine.fingerprint_pool.outstanding == 0
    assert storage.read_sync("obj0") == objects["obj0"]
    assert scrub_sync(tier).clean


def test_drain_quiesces_orphaned_futures():
    """drain() consumes futures nobody gathered before running GC."""
    storage = make_storage(fingerprint_workers=4)
    storage.write_sync("obj0", b"q" * 4096)
    pool = storage.engine.fingerprint_pool
    pool.submit_many([b"orphan-a" * 400, b"orphan-b" * 400])
    assert pool.outstanding == 2
    storage.drain()
    assert pool.outstanding == 0
    assert scrub_sync(storage.tier).clean


# -- property: parallel+faults == serial, any workload ----------------------

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

object_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=len(BLOCKS) - 1),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=4,
)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(pattern=object_strategy, fault_seed=st.integers(min_value=0, max_value=10_000))
def test_parallel_flush_under_faults_equals_serial(pattern, fault_seed):
    """Workers>1 plus a seeded FaultPlan changes nothing observable.

    EIO windows and slow disks hit the parallel engine's cluster while a
    pristine cluster flushes the same objects with inline hashing; the
    skip-and-requeue abort path plus the ordered gather must converge to
    the same chunk-pool state, space report, and readback.
    """
    parallel = make_storage(fingerprint_workers=4)
    plan = FaultPlan.generate(
        seed=fault_seed,
        horizon=2.0,
        osd_ids=list(parallel.cluster.osds),
        crash_rate=0.0,        # availability faults need recovery, not
        partition_rate=0.0,    # retry — out of scope for equivalence
        slow_rate=1.0,
        eio_rate=1.5,
    )
    FaultInjector(parallel.cluster, plan, auto_recover=True).attach()

    objects = build_objects(pattern)
    flush_all(parallel, objects)
    parallel.sim.run()  # let remaining fault windows expire
    parallel.drain()    # flush anything requeued by a faulted pass

    serial = make_storage(fingerprint_workers=1)
    flush_all(serial, objects)
    assert_equivalent(parallel, serial, objects)
