"""Tests for hot-object promotion back into the metadata-pool cache."""


from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.fingerprint import fingerprint


def make_storage(**overrides):
    defaults = dict(
        chunk_size=1024,
        dedup_interval=0.01,
        hit_count_threshold=2,
        hitset_period=0.1,
    )
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def evicted(storage, oid):
    cmap = storage.tier.peek_chunk_map(oid)
    return all(not e.cached for e in cmap)


def heat_up(storage, oid, reads=3):
    for _ in range(reads):
        storage.read_sync(oid)
        storage.sim.run(until=storage.sim.now + 0.15)  # next hitset period
    storage.sim.run()  # let the async promotion complete


def test_hot_read_promotes_evicted_object():
    storage = make_storage()
    storage.write_sync("obj1", b"hot" * 1000)
    storage.drain()
    assert evicted(storage, "obj1")
    heat_up(storage, "obj1")
    cmap = storage.tier.peek_chunk_map("obj1")
    assert all(e.fully_cached() for e in cmap)
    assert storage.engine.stats.chunks_promoted == 3
    # Subsequent reads are cache hits.
    before = storage.tier.cache_hits
    storage.read_sync("obj1")
    assert storage.tier.cache_hits > before
    assert storage.read_sync("obj1") == b"hot" * 1000


def test_cold_read_does_not_promote():
    storage = make_storage()
    storage.write_sync("obj1", b"cold" * 500)
    storage.drain()
    storage.read_sync("obj1")  # single access: below the hitcount
    storage.sim.run()
    assert evicted(storage, "obj1")
    assert storage.engine.stats.chunks_promoted == 0


def test_promotion_keeps_chunk_objects_and_refs():
    """Promotion duplicates data into the cache; the chunk pool copy and
    its reference stay (eviction later must not need a re-flush)."""
    storage = make_storage()
    storage.write_sync("obj1", b"keep" * 256)
    storage.drain()
    fp = fingerprint(b"keep" * 256)
    heat_up(storage, "obj1")
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)
    assert storage.tier.chunk_refcount(fp) == 1
    cmap = storage.tier.peek_chunk_map("obj1")
    assert cmap.get(0).chunk_id == fp  # map still points at the chunk


def test_promotion_races_with_write_safely():
    storage = make_storage()
    storage.write_sync("obj1", b"x" * 2048)
    storage.drain()

    def race():
        promo = storage.sim.process(storage.engine.promote_object("obj1"))
        write = storage.sim.process(storage.write("obj1", b"y" * 2048))
        yield storage.sim.all_of([promo, write])
        return promo.value

    result = storage.cluster.run(race())
    assert result in ("done", "raced", "nothing")
    storage.drain()
    assert storage.read_sync("obj1") == b"y" * 2048


def test_promote_missing_and_clean_objects():
    storage = make_storage()
    assert storage.cluster.run(storage.engine.promote_object("ghost")) == "missing"
    storage.write_sync("obj1", b"z" * 1024)  # still cached (not flushed)
    assert storage.cluster.run(storage.engine.promote_object("obj1")) == "nothing"


def test_promotion_respects_capacity_via_demotion():
    storage = make_storage(
        cache_capacity_bytes=2048, hit_count_threshold=1, hitset_period=100.0
    )
    # hitcount 1: everything hot, flush keeps cached, capacity demotes.
    for i in range(5):
        storage.write_sync(f"obj{i}", bytes([i]) * 1024)
    storage.drain()
    assert storage.tier.cache.cached_bytes <= 2048
    # Reading an evicted object re-promotes it and re-evicts another.
    victim = next(
        f"obj{i}" for i in range(5) if evicted(storage, f"obj{i}")
    )
    storage.read_sync(victim)
    storage.sim.run()
    assert storage.tier.cache.cached_bytes <= 2048
    cmap = storage.tier.peek_chunk_map(victim)
    assert all(e.fully_cached() for e in cmap)
