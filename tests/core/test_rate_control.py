"""Tests for the op window and watermark rate controller."""

import pytest

from repro.core import DedupConfig
from repro.core.rate_control import OpWindow, RateController
from repro.sim import Simulator


def make_rc(sim, window, **overrides):
    kwargs = dict(
        low_watermark=100.0,
        high_watermark=1000.0,
        ops_per_dedup_mid=100,
        ops_per_dedup_high=500,
    )
    kwargs.update(overrides)
    return RateController(sim, window, DedupConfig(**kwargs))


def feed(sim, window, n_ops, nbytes=4096):
    for _ in range(n_ops):
        window.note(nbytes)


def test_window_iops_and_throughput():
    sim = Simulator()
    window = OpWindow(sim, window=1.0)
    feed(sim, window, 50, nbytes=1000)
    assert window.iops() == 50.0
    assert window.throughput() == 50_000.0


def test_window_expires_old_ops():
    sim = Simulator()
    window = OpWindow(sim, window=1.0)
    feed(sim, window, 50)
    sim.run(until=2.0)
    assert window.iops() == 0.0


def test_window_totals_are_cumulative():
    sim = Simulator()
    window = OpWindow(sim, window=1.0)
    feed(sim, window, 10, nbytes=100)
    sim.run(until=5.0)
    feed(sim, window, 5, nbytes=100)
    assert window.total_ops == 15
    assert window.total_bytes == 1500


def test_window_invalid():
    with pytest.raises(ValueError):
        OpWindow(Simulator(), window=0)


def test_ratio_below_low_watermark_unthrottled():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window)
    feed(sim, window, 50)  # 50 IOPS < low (100)
    assert rc.current_ratio() == 0


def test_ratio_between_watermarks():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window)
    feed(sim, window, 500)
    assert rc.current_ratio() == 100


def test_ratio_above_high_watermark():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window)
    feed(sim, window, 2000)
    assert rc.current_ratio() == 500


def test_throttle_waits_for_n_foreground_ops_worth_of_time():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window)
    feed(sim, window, 1000)  # exactly at high watermark -> ratio 500

    def proc():
        yield from rc.throttle()
        return sim.now

    p = sim.process(proc())
    sim.run()
    # 500 ops at 1000 IOPS = 0.5 s.
    assert p.value == pytest.approx(0.5)
    assert rc.throttled == 1


def test_throttle_immediate_when_idle():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window)

    def proc():
        yield from rc.throttle()
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 0.0
    assert rc.passed == 1


def test_throttle_disabled():
    sim = Simulator()
    window = OpWindow(sim)
    rc = make_rc(sim, window, rate_control=False)
    feed(sim, window, 10_000)

    def proc():
        yield from rc.throttle()
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 0.0


def test_throughput_metric_watermarks():
    sim = Simulator()
    window = OpWindow(sim)
    config_kwargs = dict(
        watermark_metric="throughput",
        low_watermark=1_000_000.0,  # 1 MB/s
        high_watermark=100_000_000.0,
    )
    rc = make_rc(sim, window, **config_kwargs)
    feed(sim, window, 10, nbytes=1000)  # 10 KB/s < low
    assert rc.current_ratio() == 0
    feed(sim, window, 1000, nbytes=4096)  # ~4 MB/s, between watermarks
    assert rc.current_ratio() == 100


def test_config_validation():
    with pytest.raises(ValueError):
        DedupConfig(watermark_metric="bogus")
    with pytest.raises(ValueError):
        DedupConfig(low_watermark=10, high_watermark=5)
    with pytest.raises(ValueError):
        DedupConfig(refcount_mode="sometimes")
    with pytest.raises(ValueError):
        DedupConfig(chunk_size=0)
    with pytest.raises(ValueError):
        DedupConfig(hit_count_threshold=0)
