"""Chunk data cache: admission policy, budget accounting, and the
GC / recovery / rebalance interactions that evict entries.

The cache is content-addressed, so a resident payload is never
byte-stale; these tests pin down the two things that *can* go wrong:
admission/eviction accounting drifting from the actual resident bytes,
and reclaimed chunks lingering in (or being served from) the cache
after scrub GC, deletes, recovery, or rebalance rewrote the pool.
"""

import pytest

from repro.cluster import RadosCluster, rebalance_sync, recover_sync
from repro.core import DedupConfig, DedupedStorage, collect_garbage_sync
from repro.core.read_cache import ChunkDataCache
from repro.perf.stages import StageCounters

CHUNK = 1024


def make_storage(**config_overrides):
    # cache_on_flush=False keeps flushed payloads out of the foreground
    # object cache so reads actually traverse the chunk pool (and the
    # data cache in front of it).
    defaults = dict(chunk_size=CHUNK, dedup_interval=0.01, cache_on_flush=False)
    defaults.update(config_overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def resident_bytes(cache: ChunkDataCache) -> int:
    return sum(len(data) for data in cache._data.values())


# -- unit: admission and accounting ------------------------------------------


def test_two_hit_admission_requires_a_ghost_sighting():
    cache = ChunkDataCache(8 * CHUNK, StageCounters())
    assert cache.enabled
    assert cache.get("fp1") is None
    # First sighting: not admissible yet, lands on the ghost list.
    assert not cache.should_admit("fp1", CHUNK)
    cache.note_seen("fp1")
    # Second sighting while remembered: admissible.
    assert cache.should_admit("fp1", CHUNK)
    cache.admit("fp1", b"x" * CHUNK)
    assert cache.get("fp1") == b"x" * CHUNK
    assert cache.stage.chunk_cache_admissions == 1
    # Resident entries are never re-admitted.
    assert not cache.should_admit("fp1", CHUNK)


def test_ghost_list_is_bounded_fifo():
    cache = ChunkDataCache(8 * CHUNK, StageCounters(), ghost_entries=2)
    cache.note_seen("a")
    cache.note_seen("b")
    cache.note_seen("c")  # evicts "a" from the ghost list
    assert not cache.should_admit("a", CHUNK)
    assert cache.should_admit("b", CHUNK)
    assert cache.should_admit("c", CHUNK)


def test_budget_eviction_is_lru_and_accounted():
    stage = StageCounters()
    cache = ChunkDataCache(3 * CHUNK, stage)
    for fp in ("a", "b", "c"):
        cache.note_seen(fp)
        cache.admit(fp, fp.encode() * CHUNK)
    assert len(cache) == 3 and cache.bytes_used == 3 * CHUNK
    cache.get("a")  # refresh "a": "b" is now the LRU victim
    cache.note_seen("d")
    cache.admit("d", b"d" * CHUNK)
    assert "b" not in cache
    assert {"a", "c", "d"} == set(cache._data)
    assert stage.chunk_cache_evictions == 1
    assert cache.bytes_used == resident_bytes(cache) == 3 * CHUNK


def test_oversized_payloads_are_never_admitted():
    cache = ChunkDataCache(CHUNK, StageCounters())
    assert not cache.should_admit("big", 2 * CHUNK)
    cache.admit("big", b"x" * 2 * CHUNK)  # defensive: still refused
    assert len(cache) == 0 and cache.bytes_used == 0


def test_disabled_cache_is_inert():
    cache = ChunkDataCache(0, StageCounters())
    assert not cache.enabled
    cache.note_seen("fp")
    assert not cache.should_admit("fp", CHUNK)
    cache.admit("fp", b"x" * CHUNK)
    assert cache.get("fp") is None and len(cache) == 0


def test_evict_and_clear_keep_the_byte_ledger_exact():
    stage = StageCounters()
    cache = ChunkDataCache(8 * CHUNK, stage)
    for fp in ("a", "b", "c"):
        cache.note_seen(fp)
        cache.admit(fp, fp.encode() * CHUNK)
    assert cache.evict("b")
    assert not cache.evict("b")  # double-evict is a no-op, not a miscount
    assert cache.bytes_used == resident_bytes(cache) == 2 * CHUNK
    assert stage.chunk_cache_evictions == 1
    cache.clear()
    assert len(cache) == 0 and cache.bytes_used == 0
    assert stage.chunk_cache_evictions == 3


# -- integration: reclaim, recovery, rebalance -------------------------------


def prime(storage, oid, payload):
    """Write + drain + read twice: second read admits every chunk."""
    storage.write_sync(oid, payload)
    storage.drain()
    storage.read_sync(oid)
    storage.read_sync(oid)


def test_scrub_gc_reclaim_evicts_cached_payloads():
    storage = make_storage()
    payload = b"g" * 4 * CHUNK
    prime(storage, "obj1", payload)
    cache = storage.tier.chunk_data_cache
    assert len(cache) > 0 and cache.bytes_used > 0
    ev_before = storage.tier.stage.chunk_cache_evictions
    storage.delete_sync("obj1")
    collect_garbage_sync(storage.tier)
    # Every reclaimed chunk left the cache; the budget ledger is clean.
    assert len(cache) == 0 and cache.bytes_used == 0
    assert storage.tier.stage.chunk_cache_evictions > ev_before
    # Rewriting the same content mints the same fingerprints; reads must
    # come from the (re-stored) pool, not a stale accounting state.
    prime(storage, "obj2", payload)
    assert storage.read_sync("obj2") == payload


def test_last_deref_on_overwrite_evicts_the_dead_chunk():
    storage = make_storage()
    prime(storage, "obj1", b"a" * CHUNK)
    cache = storage.tier.chunk_data_cache
    assert len(cache) == 1
    # Overwrite with different content and drain: the old chunk's last
    # reference goes away and the chunk object is reclaimed inline.
    storage.write_sync("obj1", b"b" * CHUNK)
    storage.drain()
    assert storage.read_sync("obj1") == b"b" * CHUNK
    # The dead chunk no longer occupies budget.
    assert cache.bytes_used == resident_bytes(cache) <= CHUNK


def test_recovery_repair_fence_clears_the_cache():
    storage = make_storage()
    payload = b"r" * 4 * CHUNK
    prime(storage, "obj1", payload)
    cache = storage.tier.chunk_data_cache
    assert len(cache) > 0
    recover_sync(storage.cluster)
    assert len(cache) == 0 and cache.bytes_used == 0
    # Post-fence reads repopulate through the normal two-hit path.
    assert storage.read_sync("obj1") == payload
    assert storage.read_sync("obj1") == payload
    assert len(cache) > 0


def test_rebalance_repair_fence_clears_the_cache_and_reads_survive():
    storage = make_storage()
    payloads = {f"obj{i}": bytes([i]) * 4 * CHUNK for i in range(4)}
    for oid, payload in payloads.items():
        prime(storage, oid, payload)
    cache = storage.tier.chunk_data_cache
    assert len(cache) > 0
    diff = storage.cluster.expand("host4", 2)
    assert diff.pgs_remapped > 0
    rebalance_sync(storage.cluster)
    assert len(cache) == 0 and cache.bytes_used == 0
    # Chunks moved to different OSDs; cold reads must still assemble
    # byte-identical objects through the fan-out + coalescing path.
    for oid, payload in payloads.items():
        assert storage.read_sync(oid) == payload


def test_repair_listener_witnesses_cache_clear():
    storage = make_storage()
    prime(storage, "obj1", b"w" * 2 * CHUNK)
    cache = storage.tier.chunk_data_cache
    held = len(cache)
    assert held > 0
    ev_before = storage.tier.stage.chunk_cache_evictions
    storage.cluster.notify_repaired()
    assert len(cache) == 0
    assert storage.tier.stage.chunk_cache_evictions == ev_before + held
    assert storage.read_sync("obj1") == b"w" * 2 * CHUNK


def test_unbatched_read_config_bypasses_every_layer():
    storage = make_storage(
        chunk_cache_bytes=0, read_fanout_window=0, coalesce_reads=False
    )
    payload = b"u" * 4 * CHUNK
    prime(storage, "obj1", payload)
    stage = storage.tier.stage
    assert storage.tier.read_window is None
    assert not storage.tier.chunk_data_cache.enabled
    assert stage.chunk_cache_hits == stage.chunk_cache_misses == 0
    assert stage.chunk_cache_admissions == 0
    assert stage.fanout_batches == 0
    assert storage.read_sync("obj1") == payload
