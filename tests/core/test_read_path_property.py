"""Property tests for the read-path engine (fan-out + coalescing +
chunk data cache).

For ANY random mix of overwrites, drains, and (offset, length) reads,
a storage with all three read-path layers enabled must return exactly
the bytes a layer-free sequential storage returns — which are exactly
the bytes a plain shadow buffer predicts.  A second property drives
the enabled storage through seeded EIO/slow-disk fault plans: the
internal read retries must neither tear segments nor double-count
chunk-cache lookups.

Uses Hypothesis when available (CI installs it); skipped otherwise.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cluster import RadosCluster  # noqa: E402
from repro.core import DedupConfig, DedupedStorage  # noqa: E402

KiB = 1024
CHUNK = 16 * KiB
OBJECT_SIZE = 4 * CHUNK
OBJECTS = 3

#: Read-path layers off: no data cache, strictly sequential fetches,
#: no coalescing (mirrors the perf harness's UNBATCHED read overrides).
DISABLED = dict(chunk_cache_bytes=0, read_fanout_window=0, coalesce_reads=False)


def build_storage(enabled: bool, **extra) -> DedupedStorage:
    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=8)
    overrides = dict(chunk_size=CHUNK, cache_on_flush=False)
    if not enabled:
        overrides.update(DISABLED)
    overrides.update(extra)
    return DedupedStorage(cluster, DedupConfig(**overrides), start_engine=False)


def base_payload(tone: int) -> bytes:
    # Small alphabet => heavy cross-object dedup, so reads genuinely
    # share chunks (the case the cache and coalescing exist for).
    return b"".join(bytes([(tone + i) % 5]) * CHUNK for i in range(4))


#: An op is a write (object, offset, length, fill byte), a read
#: (object, offset, length), or a dedup drain.
op_strategy = st.one_of(
    st.tuples(
        st.just("w"),
        st.integers(0, OBJECTS - 1),
        st.integers(0, OBJECT_SIZE - 1),
        st.integers(1, 2 * CHUNK),
        st.integers(0, 255),
    ),
    st.tuples(
        st.just("r"),
        st.integers(0, OBJECTS - 1),
        st.integers(0, OBJECT_SIZE - 1),
        st.integers(1, OBJECT_SIZE),
    ),
    st.tuples(st.just("d")),
)


def apply_ops(storage: DedupedStorage, tone: int, ops) -> list:
    """Run the op sequence; returns every read's bytes, in order."""
    shadow = {}
    for obj in range(OBJECTS):
        payload = base_payload(tone + obj)
        storage.write_sync(f"p.o{obj}", payload)
        shadow[obj] = bytearray(payload)
    storage.drain()

    reads = []
    for op in ops:
        if op[0] == "w":
            _, obj, off, length, fill = op
            length = min(length, OBJECT_SIZE - off)
            patch = bytes([fill]) * length
            storage.write_sync(f"p.o{obj}", patch, offset=off)
            shadow[obj][off : off + length] = patch
        elif op[0] == "r":
            _, obj, off, length = op
            length = min(length, OBJECT_SIZE - off)
            data = storage.read_sync(f"p.o{obj}", offset=off, length=length)
            assert data == bytes(shadow[obj][off : off + length]), (
                f"read {obj}@{off}+{length} diverged from shadow"
            )
            reads.append(data)
        else:
            storage.drain()
    storage.drain()
    # Full readback after the final drain (chunk-pool data only).
    for obj in range(OBJECTS):
        data = storage.read_sync(f"p.o{obj}")
        assert data == bytes(shadow[obj])
        reads.append(data)
    return reads


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tone=st.integers(min_value=0, max_value=50),
    ops=st.lists(op_strategy, min_size=1, max_size=20),
)
def test_read_path_layers_do_not_change_any_readback(tone, ops):
    enabled_reads = apply_ops(build_storage(enabled=True), tone, ops)
    disabled_reads = apply_ops(build_storage(enabled=False), tone, ops)
    assert enabled_reads == disabled_reads


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    tone=st.integers(min_value=0, max_value=50),
    ops=st.lists(op_strategy, min_size=1, max_size=16),
    fault_seed=st.integers(min_value=0, max_value=10_000),
)
def test_read_path_correct_and_counts_stable_under_faults(tone, ops, fault_seed):
    """EIO windows and slow disks during fan-out reads change nothing.

    The read path retries internally; retried attempts must not return
    torn segments (every read still matches the shadow buffer) and must
    not double-count cache lookups: hit+miss totals are folded once per
    *completed* attempt, so the faulted run's lookup total must equal a
    fault-free run's (the hit/miss split may shift — an aborted attempt
    can legitimately admit a chunk the final attempt then hits).
    """
    from repro.faults import FaultInjector, FaultPlan

    clean = build_storage(enabled=True)
    clean_reads = apply_ops(clean, tone, ops)

    faulted = build_storage(enabled=True)
    plan = FaultPlan.generate(
        seed=fault_seed,
        horizon=1.0,
        osd_ids=list(faulted.cluster.osds),
        crash_rate=0.0,      # availability faults need recovery, not
        partition_rate=0.0,  # retry — out of scope for this property
        slow_rate=2.0,
        eio_rate=3.0,
    )
    FaultInjector(faulted.cluster, plan, auto_recover=True).attach()
    faulted_reads = apply_ops(faulted, tone, ops)

    assert faulted_reads == clean_reads
    c, f = clean.tier.stage, faulted.tier.stage
    assert (f.chunk_cache_hits + f.chunk_cache_misses) == (
        c.chunk_cache_hits + c.chunk_cache_misses
    ), "retries double- or under-counted chunk-cache lookups"
