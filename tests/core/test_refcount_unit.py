"""Unit tests for the refcount strategies in isolation."""


from repro.cluster import RadosCluster
from repro.core import (
    DedupConfig,
    FalsePositiveRefcount,
    StrictRefcount,
    make_refcounter,
)
from repro.core.objects import ChunkRef
from repro.core.tier import DedupTier, NodeClient
from repro.fingerprint import fingerprint


def make_tier(mode="strict"):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    tier = DedupTier(cluster, DedupConfig(chunk_size=1024, refcount_mode=mode))
    via = NodeClient(next(iter(cluster.nodes.values())))
    return tier, via


def test_factory_selects_strategy():
    tier, _via = make_tier("strict")
    assert isinstance(make_refcounter(tier), StrictRefcount)
    tier, _via = make_tier("false_positive")
    assert isinstance(make_refcounter(tier), FalsePositiveRefcount)


def test_strict_deref_is_immediate():
    tier, via = make_tier("strict")
    data = b"x" * 512
    fp = fingerprint(data)
    ref = ChunkRef(tier.metadata_pool.pool_id, "o", 0)
    tier.cluster.run(tier.chunk_ref(fp, ref, data, via))
    counter = StrictRefcount(tier)
    assert counter.pending == 0
    tier.cluster.run(counter.deref(fp, ref, via))
    assert not tier.cluster.exists(tier.chunk_pool, fp)


def test_fp_deref_is_deferred_until_gc():
    tier, via = make_tier("false_positive")
    data = b"y" * 512
    fp = fingerprint(data)
    ref = ChunkRef(tier.metadata_pool.pool_id, "o", 0)
    tier.cluster.run(tier.chunk_ref(fp, ref, data, via))
    counter = FalsePositiveRefcount(tier)
    tier.cluster.run(counter.deref(fp, ref, via))
    assert counter.pending == 1
    assert tier.cluster.exists(tier.chunk_pool, fp)  # still there
    tier.cluster.run(counter.gc(via))
    assert counter.pending == 0
    assert counter.collected == 1
    assert not tier.cluster.exists(tier.chunk_pool, fp)


def test_chunk_ref_idempotent_same_ref():
    tier, via = make_tier()
    data = b"z" * 256
    fp = fingerprint(data)
    ref = ChunkRef(tier.metadata_pool.pool_id, "o", 0)
    assert tier.cluster.run(tier.chunk_ref(fp, ref, data, via)) is True
    assert tier.cluster.run(tier.chunk_ref(fp, ref, data, via)) is False
    assert tier.chunk_refcount(fp) == 1


def test_deref_unknown_chunk_is_noop():
    tier, via = make_tier()
    ref = ChunkRef(tier.metadata_pool.pool_id, "o", 0)
    tier.cluster.run(tier.chunk_deref("deadbeef" * 5, ref, via))  # no raise


def test_deref_foreign_ref_leaves_chunk():
    tier, via = make_tier()
    data = b"w" * 256
    fp = fingerprint(data)
    mine = ChunkRef(tier.metadata_pool.pool_id, "mine", 0)
    other = ChunkRef(tier.metadata_pool.pool_id, "other", 0)
    tier.cluster.run(tier.chunk_ref(fp, mine, data, via))
    tier.cluster.run(tier.chunk_deref(fp, other, via))  # not a holder
    assert tier.cluster.exists(tier.chunk_pool, fp)
    assert tier.chunk_refcount(fp) == 1
