"""Tests for scrub (integrity verification) and offline GC."""


from repro.cluster import RadosCluster, Transaction
from repro.core import DedupConfig, DedupedStorage
from repro.core.objects import ChunkRef, REFS_XATTR
from repro.core.scrub import collect_garbage_sync, scrub_sync
from repro.fingerprint import fingerprint


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def populated():
    storage = make_storage()
    for i in range(8):
        storage.write_sync(f"obj{i}", bytes([i % 4]) * 2000)  # 4 dup pairs
    storage.drain()
    return storage


def test_scrub_clean_system():
    storage = populated()
    report = scrub_sync(storage.tier)
    assert report.clean
    assert report.chunks_checked == 8  # 4 contents x 2 chunks


def test_scrub_detects_corrupt_chunk():
    storage = populated()
    chunk_id = storage.cluster.list_objects(storage.tier.chunk_pool)[0]
    key = storage.cluster.object_key(storage.tier.chunk_pool, chunk_id)
    for osd in storage.cluster.osds.values():
        if osd.store.exists(key):
            osd.store.get(key).data[0] ^= 0xFF  # bit rot
    report = scrub_sync(storage.tier)
    assert report.corrupt_chunks == [chunk_id]


def test_scrub_detects_dangling_map_entry():
    storage = populated()
    victim = storage.tier.peek_chunk_map("obj0").get(0).chunk_id
    storage.cluster.remove_sync(storage.tier.chunk_pool, victim)
    report = scrub_sync(storage.tier)
    assert any(oid.startswith("obj") for oid, _off in report.dangling_map_entries)


def test_scrub_detects_stale_reference():
    storage = populated()
    chunk_id = storage.cluster.list_objects(storage.tier.chunk_pool)[0]
    refs = storage.tier._load_refs(chunk_id)
    refs.add(ChunkRef(storage.tier.metadata_pool.pool_id, "ghost-object", 0))
    key = storage.cluster.object_key(storage.tier.chunk_pool, chunk_id)
    storage.cluster.submit_sync(
        storage.tier.chunk_pool,
        chunk_id,
        Transaction().setxattr(key, REFS_XATTR, refs.serialize()),
    )
    report = scrub_sync(storage.tier)
    assert len(report.stale_references) == 1
    assert report.stale_references[0][1].source_oid == "ghost-object"


def test_gc_clean_system_is_noop():
    storage = populated()
    before = storage.space_report()
    report = collect_garbage_sync(storage.tier)
    assert report.references_dropped == 0
    assert report.chunks_removed == 0
    assert storage.space_report().stored_bytes == before.stored_bytes


def test_gc_reclaims_leaked_chunks_after_crash():
    """A crash in false-positive refcount mode loses the in-memory deref
    queue; offline GC recovers the space from the persisted maps."""
    storage = make_storage(refcount_mode="false_positive")
    storage.write_sync("obj1", b"OLD" * 400)
    storage.drain()
    old_fps = {e.chunk_id for e in storage.tier.peek_chunk_map("obj1")}
    storage.write_sync("obj1", b"NEW" * 400)
    storage.cluster.run(storage.engine.drain(run_gc=False))  # flush, no GC
    # Simulate the crash: the queued dereferences vanish.
    storage.engine.refcount._queue.clear()
    for fp in old_fps:
        assert storage.cluster.exists(storage.tier.chunk_pool, fp)  # leaked
    report = collect_garbage_sync(storage.tier)
    assert report.chunks_removed == len(old_fps)
    assert report.bytes_reclaimed == 1200
    for fp in old_fps:
        assert not storage.cluster.exists(storage.tier.chunk_pool, fp)
    # Live data untouched.
    assert storage.read_sync("obj1") == b"NEW" * 400
    assert scrub_sync(storage.tier).clean


def test_gc_drops_stale_ref_but_keeps_shared_chunk():
    storage = make_storage(refcount_mode="false_positive")
    storage.write_sync("keep", b"S" * 1024)
    storage.write_sync("move", b"S" * 1024)  # same chunk, two refs
    storage.drain()
    fp = fingerprint(b"S" * 1024)
    storage.write_sync("move", b"T" * 1024)
    storage.cluster.run(storage.engine.drain(run_gc=False))
    storage.engine.refcount._queue.clear()  # crash
    assert storage.tier.chunk_refcount(fp) == 2  # one ref is stale
    report = collect_garbage_sync(storage.tier)
    assert report.references_dropped == 1
    assert report.chunks_removed == 0
    assert storage.tier.chunk_refcount(fp) == 1
    assert storage.read_sync("keep") == b"S" * 1024


def test_gc_skips_dirty_objects_chunks():
    """Chunks referenced by still-dirty maps are in flux; GC must not
    touch chunks their (old) entries reference."""
    storage = populated()
    storage.write_sync("obj0", b"fresh" * 300)  # dirty again (1500 of 2000 B)
    collect_garbage_sync(storage.tier)
    # The old chunks of obj0 are still referenced by its (dirty) map
    # entries, so nothing was removed that a re-flush might need; the
    # overwrite's prefix and the surviving old tail both read correctly.
    got = storage.read_sync("obj0")
    assert got[:1500] == b"fresh" * 300
    assert got[1500:] == bytes([0]) * 500
    storage.drain()
    assert scrub_sync(storage.tier).clean
