"""Property tests for the read path's valid-range splitter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.io_path import _split_by_valid
from repro.core.objects import merge_ranges


ranges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    ).map(lambda t: (min(t), max(t))),
    max_size=6,
)


@given(
    start=st.integers(min_value=0, max_value=100),
    end=st.integers(min_value=0, max_value=100),
    raw=ranges_strategy,
)
@settings(max_examples=200)
def test_split_partitions_request_exactly(start, end, raw):
    if end < start:
        start, end = end, start
    valid = merge_ranges(raw)
    pieces = list(_split_by_valid(start, end, valid))
    # Pieces tile [start, end) in order with no gaps or overlaps.
    pos = start
    for piece_start, piece_end, _in_cache in pieces:
        assert piece_start == pos
        assert piece_end > piece_start
        pos = piece_end
    assert pos == end or (start == end and not pieces)
    # Every point's cache verdict matches membership in the valid set.
    for piece_start, piece_end, in_cache in pieces:
        for point in range(piece_start, piece_end):
            member = any(s <= point < e for s, e in valid)
            assert member == in_cache


@given(raw=ranges_strategy)
@settings(max_examples=100)
def test_split_alternates_cache_flags(raw):
    valid = merge_ranges(raw)
    pieces = list(_split_by_valid(0, 100, valid))
    for (s1, e1, c1), (s2, e2, c2) in zip(pieces, pieces[1:]):
        assert c1 != c2  # adjacent pieces always flip (ranges are merged)


def test_split_empty_request():
    assert list(_split_by_valid(5, 5, ((0, 10),))) == []


def test_split_fully_cached():
    assert list(_split_by_valid(2, 8, ((0, 10),))) == [(2, 8, True)]


def test_split_fully_uncached():
    assert list(_split_by_valid(2, 8, ())) == [(2, 8, False)]
