"""Tests for the operational status snapshot."""

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.core.status import DedupStatus


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def test_status_fresh_store():
    storage = make_storage()
    status = storage.status()
    assert isinstance(status, DedupStatus)
    assert not status.engine_running
    assert status.dirty_objects == 0
    assert status.space.logical_bytes == 0
    assert status.refcount_mode == "strict"


def test_status_reflects_dirty_backlog_and_cache():
    storage = make_storage()
    for i in range(4):
        storage.write_sync(f"obj{i}", b"x" * 2048)
    status = storage.status()
    assert status.dirty_objects == 4
    assert status.cached_bytes == 4 * 2048
    assert status.foreground_iops > 0
    assert status.space.logical_bytes == 4 * 2048


def test_status_after_drain():
    storage = make_storage()
    for i in range(4):
        storage.write_sync(f"obj{i}", b"same" * 512)
    storage.drain()
    status = storage.status()
    assert status.dirty_objects == 0
    assert status.engine.objects_processed == 4
    assert status.space.chunk_objects == 1
    assert status.space.actual_dedup_ratio > 0.2  # metadata-heavy at tiny scale
    assert status.pool_raw_bytes["dedup-chunks"] > 0


def test_status_engine_running_flag():
    storage = make_storage()
    storage.engine.start()
    assert storage.status().engine_running
    storage.engine.stop()
    storage.sim.run(until=storage.sim.now + 1.0)
    assert not storage.status().engine_running


def test_status_pending_derefs_in_fp_mode():
    storage = make_storage(refcount_mode="false_positive")
    storage.write_sync("obj1", b"A" * 1024)
    storage.drain()
    storage.write_sync("obj1", b"B" * 1024)
    storage.cluster.run(storage.engine.drain(run_gc=False))
    status = storage.status()
    assert status.refcount_mode == "false_positive"
    assert status.pending_derefs == 1


def test_summary_lines_render():
    storage = make_storage()
    storage.write_sync("obj1", b"y" * 4096)
    storage.drain()
    lines = storage.status().summary_lines()
    assert any("dedup ratio" in line for line in lines)
    assert all(isinstance(line, str) for line in lines)
