"""The acceptance scenario: faulted workloads end with zero data loss.

The CI ``faults-smoke`` job runs this module under several values of
``REPRO_FAULT_SEED``; locally the default seed exercises a crash plus
window faults.
"""

import os

import pytest

from repro.faults import FaultPlan, run_faulted_workload
from repro.metrics import fault_report

SEED = int(os.environ.get("REPRO_FAULT_SEED", "1"))


def test_generated_plan_zero_data_loss_and_clean_scrub():
    result = run_faulted_workload(seed=SEED, num_objects=16, horizon=3.0)
    assert result.zero_data_loss, f"lost objects: {result.corrupted_objects}"
    assert result.scrub.clean
    assert result.scrub.chunks_checked > 0
    assert result.injector.down_osds == []


def test_kill_one_osd_mid_flush():
    # The ISSUE's acceptance scenario: a seeded plan that kills 1 of N
    # OSDs mid-flush; the client workload completes with zero data
    # loss and the scrub reports zero refcount leaks.
    plan = FaultPlan.single_osd_kill(2, at=1.0, restart_after=1.0, seed=SEED)
    result = run_faulted_workload(
        seed=SEED, plan=plan, num_objects=16, horizon=3.0
    )
    assert result.injector.stats.crashes == 1
    assert result.injector.stats.restarts == 1
    assert result.zero_data_loss
    assert result.scrub.clean
    assert not result.scrub.stale_references  # zero refcount leaks
    assert not result.scrub.dangling_map_entries  # zero missing chunks


def test_counters_surface_through_metrics_and_status():
    result = run_faulted_workload(seed=SEED, num_objects=8, horizon=2.0)
    report = fault_report(result.storage)
    assert report.faults is result.injector.stats
    assert report.retry.attempts > 0
    assert 0.0 <= report.availability <= 1.0
    joined = "\n".join(report.summary_lines())
    assert "osd crashes" in joined and "availability" in joined

    status_lines = "\n".join(result.storage.status().summary_lines())
    assert "retries" in status_lines
    assert "osd crashes" in status_lines  # injector attached -> visible


def test_eio_storm_is_absorbed_by_retries():
    from repro.faults import FaultEvent

    events = [
        FaultEvent(0.2, "transient_errors", str(o), duration=2.0,
                   params={"probability": 0.2})
        for o in range(8)
    ]
    result = run_faulted_workload(
        seed=SEED, plan=FaultPlan(events, seed=SEED), num_objects=12, horizon=3.0
    )
    assert result.injector.stats.eio_injected > 0
    assert result.storage.tier.retry_stats.retries > 0
    assert result.zero_data_loss
    assert result.scrub.clean


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seed_sweep_smoke(seed):
    result = run_faulted_workload(seed=seed, num_objects=10, horizon=2.5)
    assert result.ok
