"""FaultInjector against a real (simulated) cluster."""

import pytest

from repro.cluster import RadosCluster, recover_sync
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NetworkPartitionError,
    TransientOpError,
)


def make_cluster():
    return RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)


def test_crash_and_restart_keep_disk_contents():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    holder = next(
        o for o in cluster.osds.values()
        if any(k.name == "x" for k in o.store.keys())
    )
    plan = FaultPlan.single_osd_kill(holder.osd_id, at=1.0, restart_after=1.0)
    inj = FaultInjector(cluster, plan, auto_recover=False).attach()

    cluster.sim.run(until=1.5)
    assert not holder.up
    assert inj.down_osds == [holder.osd_id]
    assert inj.stats.crashes == 1
    # Dead disk keeps its contents (down, not wiped).
    assert any(k.name == "x" for k in holder.store.keys())

    cluster.sim.run(until=2.5)
    assert holder.up
    assert holder.needs_backfill  # stale until recovery reconciles
    assert inj.stats.restarts == 1
    recover_sync(cluster)
    assert not holder.needs_backfill
    assert cluster.read_sync(pool, "x") == b"payload"


def test_restart_triggers_auto_recovery():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    osd_id = next(iter(cluster.osds))
    plan = FaultPlan.single_osd_kill(osd_id, at=0.5, restart_after=0.5)
    FaultInjector(cluster, plan, auto_recover=True).attach()
    cluster.sim.run(until=5.0)
    assert cluster.osds[osd_id].up
    assert not cluster.osds[osd_id].needs_backfill  # recovery already ran


def test_transient_error_window_injects_eio():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    events = [
        FaultEvent(0.5, "transient_errors", str(osd_id), duration=10.0,
                   params={"probability": 1.0})
        for osd_id in cluster.osds
    ]
    inj = FaultInjector(cluster, FaultPlan(events)).attach()
    cluster.sim.run(until=1.0)
    with pytest.raises(TransientOpError) as excinfo:
        cluster.read_sync(pool, "x")
    assert excinfo.value.retryable
    assert inj.stats.eio_injected >= 1


def test_transient_error_window_expires():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    events = [
        FaultEvent(0.5, "transient_errors", str(osd_id), duration=1.0,
                   params={"probability": 1.0})
        for osd_id in cluster.osds
    ]
    inj = FaultInjector(cluster, FaultPlan(events)).attach()
    cluster.sim.run(until=2.0)  # past every window
    assert cluster.read_sync(pool, "x") == b"payload"
    assert inj.stats.windows_expired == len(events)


def test_slow_disk_window_charges_extra_device_time():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"z" * 4096)
    baseline_start = cluster.sim.now
    cluster.read_sync(pool, "x")
    baseline = cluster.sim.now - baseline_start

    # Event times are relative to attach(); time 0.0 means "now".
    events = [
        FaultEvent(0.0, "slow_disk", str(osd_id), duration=100.0,
                   params={"factor": 5.0})
        for osd_id in cluster.osds
    ]
    inj = FaultInjector(cluster, FaultPlan(events)).attach()
    cluster.sim.run(until=cluster.sim.now + 1e-6)  # deliver the window events
    slow_start = cluster.sim.now
    cluster.read_sync(pool, "x")
    slowed = cluster.sim.now - slow_start
    assert slowed > baseline
    assert inj.stats.slow_ops_delayed >= 1


def test_partition_blocks_cross_host_transfers():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    inj = FaultInjector(
        cluster,
        FaultPlan([FaultEvent(0.1, "partition", "host0|host1", duration=50.0)]),
    ).attach()
    cluster.sim.run(until=1.0)
    nic0 = cluster.nodes["host0"].nic
    nic1 = cluster.nodes["host1"].nic
    with pytest.raises(NetworkPartitionError):
        inj.check_link(nic0, nic1)
    with pytest.raises(NetworkPartitionError):
        inj.check_link(nic1, nic0)  # symmetric
    # Same-host and client links are unaffected.
    inj.check_link(nic0, nic0)
    inj.check_link(cluster._default_client.nic, nic0)
    assert inj.stats.partition_drops == 2
    # A replicated write across the pair must fail while partitioned.
    with pytest.raises(NetworkPartitionError):
        cluster.write_full_sync(pool, "y", b"blocked")


def test_heal_all_restarts_and_clears_windows():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    osd_id = next(iter(cluster.osds))
    plan = FaultPlan(
        [
            FaultEvent(0.5, "osd_crash", str(osd_id)),
            FaultEvent(0.6, "partition", "host0|host1", duration=100.0),
        ]
        + [
            FaultEvent(0.6, "transient_errors", str(o), duration=100.0,
                       params={"probability": 1.0})
            for o in cluster.osds
        ]
    )
    inj = FaultInjector(cluster, plan, auto_recover=False).attach()
    cluster.sim.run(until=1.0)
    assert inj.down_osds == [osd_id]
    inj.heal_all()
    assert inj.down_osds == []
    assert cluster.osds[osd_id].up
    recover_sync(cluster)
    assert cluster.read_sync(pool, "x") == b"payload"


def test_detach_stops_injection():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    events = [
        FaultEvent(0.5, "transient_errors", str(o), duration=100.0,
                   params={"probability": 1.0})
        for o in cluster.osds
    ]
    inj = FaultInjector(cluster, FaultPlan(events)).attach()
    cluster.sim.run(until=1.0)
    inj.detach()
    assert cluster.faults is None
    assert cluster.read_sync(pool, "x") == b"payload"


def test_read_fails_over_when_primary_crashes_mid_workload():
    cluster = make_cluster()
    pool = cluster.create_pool("p")
    cluster.write_full_sync(pool, "x", b"payload")
    primary = cluster._primary(pool, "x")
    plan = FaultPlan.single_osd_kill(primary.osd_id, at=0.5)
    FaultInjector(cluster, plan, auto_recover=False).attach()
    cluster.sim.run(until=1.0)
    # Primary down (still "in"): the read path must fail over to the
    # surviving replica rather than surface OsdDownError.
    assert cluster.read_sync(pool, "x") == b"payload"
    assert cluster._primary(pool, "x") is not primary
