"""FaultPlan: seeded determinism, validation, constructors."""

import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultPlan


def test_generate_is_deterministic_per_seed():
    kwargs = dict(horizon=5.0, osd_ids=range(8), hosts=[f"host{i}" for i in range(4)])
    a = FaultPlan.generate(seed=42, **kwargs)
    b = FaultPlan.generate(seed=42, **kwargs)
    assert a.events == b.events
    assert a.describe() == b.describe()


def test_generate_varies_across_seeds():
    kwargs = dict(horizon=5.0, osd_ids=range(8), hosts=[f"host{i}" for i in range(4)])
    plans = [FaultPlan.generate(seed=s, **kwargs) for s in range(20)]
    assert len({"\n".join(p.describe()) for p in plans}) > 1


def test_generated_events_sorted_and_within_horizon():
    for seed in range(30):
        plan = FaultPlan.generate(seed=seed, horizon=4.0, osd_ids=range(6),
                                  hosts=["host0", "host1"])
        times = [ev.time for ev in plan]
        assert times == sorted(times)
        for ev in plan:
            assert 0 <= ev.time <= 4.0
            assert ev.kind in FAULT_KINDS


def test_every_crash_gets_a_restart_inside_horizon():
    for seed in range(50):
        plan = FaultPlan.generate(seed=seed, horizon=4.0, osd_ids=range(6))
        crashes = [ev for ev in plan if ev.kind == "osd_crash"]
        restarts = {ev.target: ev.time for ev in plan if ev.kind == "osd_restart"}
        for crash in crashes:
            assert crash.target in restarts
            assert crash.time < restarts[crash.target] <= 4.0


def test_single_osd_kill():
    plan = FaultPlan.single_osd_kill(3, at=1.0, restart_after=0.5)
    assert [(ev.time, ev.kind, ev.target) for ev in plan] == [
        (1.0, "osd_crash", "3"),
        (1.5, "osd_restart", "3"),
    ]
    no_restart = FaultPlan.single_osd_kill(3, at=1.0)
    assert len(no_restart) == 1


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(1.0, "meteor_strike", "0")
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "osd_crash", "0")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "slow_disk", "0", duration=-0.5)


def test_events_are_sorted_on_construction():
    plan = FaultPlan(
        [
            FaultEvent(2.0, "osd_restart", "1"),
            FaultEvent(1.0, "osd_crash", "1"),
        ]
    )
    assert [ev.kind for ev in plan] == ["osd_crash", "osd_restart"]


def test_describe_mentions_every_event():
    plan = FaultPlan.generate(seed=1, horizon=5.0, osd_ids=range(8),
                              hosts=["host0", "host1"])
    lines = plan.describe()
    assert len(lines) == len(plan)
    for ev, line in zip(plan, lines):
        assert ev.kind in line and ev.target in line
