"""Property test: for ANY seeded FaultPlan, the post-recovery scrub
finds zero refcount leaks and zero missing chunks, and every object
reads back intact.

Uses Hypothesis when available (CI installs it); skipped otherwise.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.faults import run_faulted_workload  # noqa: E402


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_any_seeded_plan_preserves_data_and_refcounts(seed):
    result = run_faulted_workload(seed=seed, num_objects=10, horizon=2.5)
    assert result.zero_data_loss, (
        f"seed {seed} lost {result.corrupted_objects}; "
        f"plan:\n" + "\n".join(result.plan.describe())
    )
    scrub = result.scrub
    assert not scrub.stale_references, f"seed {seed}: refcount leaks"
    assert not scrub.unreferenced_chunks, f"seed {seed}: leaked chunks"
    assert not scrub.dangling_map_entries, f"seed {seed}: missing chunks"
    assert not scrub.corrupt_chunks, f"seed {seed}: corrupt chunks"
