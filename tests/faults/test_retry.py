"""The retry primitive: backoff, timeouts, classification, counters."""

import pytest

from repro.faults import (
    OpTimeoutError,
    RetryPolicy,
    RetryStats,
    TransientOpError,
    call_with_retries,
)
from repro.sim import Simulator


def run_retrying(sim, policy, factory, stats=None, op="op"):
    return sim.run_until_complete(
        sim.process(call_with_retries(sim, policy, factory, stats, op=op))
    )


def flaky(sim, failures, exc_factory, result="done", work=0.0):
    """Factory whose first ``failures`` attempts raise, then succeed."""
    state = {"left": failures}

    def attempt():
        if work:
            yield sim.timeout(work)
        else:
            yield sim.timeout(0)
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return result

    return attempt


def test_first_attempt_success_costs_nothing_extra():
    sim = Simulator()
    stats = RetryStats()
    result = run_retrying(
        sim, RetryPolicy(), flaky(sim, 0, lambda: TransientOpError(0, "read")), stats
    )
    assert result == "done"
    assert (stats.attempts, stats.retries, stats.successes) == (1, 0, 1)
    assert stats.successes_after_retry == 0
    assert stats.availability == 1.0


def test_retries_transient_errors_with_exponential_backoff():
    sim = Simulator()
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, backoff=2.0, max_delay=1.0)
    result = run_retrying(
        sim, policy, flaky(sim, 2, lambda: TransientOpError(0, "write")), stats
    )
    assert result == "done"
    # Two failed attempts -> backoff sleeps of 0.01 and 0.02 before
    # attempts 2 and 3.
    assert sim.now == pytest.approx(0.03)
    assert (stats.attempts, stats.retries) == (3, 2)
    assert stats.successes_after_retry == 1


def test_backoff_is_capped_at_max_delay():
    policy = RetryPolicy(max_attempts=10, base_delay=0.01, backoff=10.0, max_delay=0.05)
    assert policy.delay_before(1) == 0.0
    assert policy.delay_before(2) == pytest.approx(0.01)
    assert policy.delay_before(3) == pytest.approx(0.05)  # 0.1 capped
    assert policy.delay_before(9) == pytest.approx(0.05)


def test_fatal_errors_propagate_immediately():
    sim = Simulator()
    stats = RetryStats()

    def attempt():
        yield sim.timeout(0)
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        run_retrying(sim, RetryPolicy(), attempt, stats)
    assert stats.attempts == 1
    assert stats.retries == 0
    assert stats.giveups == 0  # fatal, not exhausted


def test_gives_up_after_max_attempts_and_raises_last_error():
    sim = Simulator()
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=3, base_delay=0.001)
    with pytest.raises(TransientOpError):
        run_retrying(
            sim, policy, flaky(sim, 99, lambda: TransientOpError(5, "read")), stats
        )
    assert (stats.attempts, stats.retries, stats.giveups) == (3, 2, 1)
    assert stats.successes == 0
    assert stats.availability == 0.0


def test_per_attempt_timeout_raises_and_is_counted():
    sim = Simulator()
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=2, base_delay=0.001, op_timeout=0.05)

    def slow_op():
        yield sim.timeout(10.0)
        return "too late"

    with pytest.raises(OpTimeoutError):
        run_retrying(sim, policy, slow_op, stats, op="slow")
    assert stats.timeouts == 2
    assert stats.giveups == 1
    # Both attempts cut off at the deadline, not the op's 10s.
    assert sim.now < 1.0


def test_timeout_then_success():
    sim = Simulator()
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=3, base_delay=0.001, op_timeout=0.05)
    durations = iter([10.0, 0.01])

    def sometimes_slow():
        yield sim.timeout(next(durations))
        return "ok"

    assert run_retrying(sim, policy, sometimes_slow, stats) == "ok"
    assert stats.timeouts == 1
    assert stats.successes_after_retry == 1


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(op_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


def test_policy_from_config():
    from repro.core import DedupConfig

    policy = RetryPolicy.from_config(
        DedupConfig(retry_max_attempts=7, retry_base_delay=0.5, op_timeout=2.0)
    )
    assert policy.max_attempts == 7
    assert policy.base_delay == 0.5
    assert policy.op_timeout == 2.0
