"""Tests for fingerprinting and the baseline fingerprint index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fingerprint import (
    FingerprintIndex,
    fingerprint,
    fingerprint_size,
)


def test_fingerprint_deterministic():
    assert fingerprint(b"hello") == fingerprint(b"hello")


def test_fingerprint_distinguishes_content():
    assert fingerprint(b"hello") != fingerprint(b"hellp")


def test_known_sha1():
    assert fingerprint(b"", "sha1") == "da39a3ee5e6b4b0d3255bfef95601890afd80709"


@pytest.mark.parametrize("algo,size", [("sha1", 20), ("sha256", 32), ("blake2b", 20)])
def test_fingerprint_sizes(algo, size):
    assert fingerprint_size(algo) == size
    assert len(fingerprint(b"data", algo)) == 2 * size


def test_unknown_algorithm():
    with pytest.raises(ValueError):
        fingerprint(b"x", "md5000")


@given(a=st.binary(max_size=256), b=st.binary(max_size=256))
def test_equal_content_iff_equal_fingerprint(a, b):
    # Collision resistance at property-test scale: fingerprints agree
    # exactly when content agrees.
    assert (fingerprint(a) == fingerprint(b)) == (a == b)


# ----------------------------------------------------------------- index


def test_index_lookup_insert():
    idx = FingerprintIndex()
    fp = fingerprint(b"chunk")
    assert idx.lookup(fp) is None
    idx.insert(fp, ("pool", 7))
    assert idx.lookup(fp) == ("pool", 7)
    assert idx.stats.hits == 1
    assert idx.stats.lookups == 2


def test_index_memory_accounting():
    idx = FingerprintIndex(algorithm="sha1", address_bytes=12)
    assert idx.entry_bytes == 32  # the paper's "at least 32 bytes" entry
    for i in range(100):
        idx.insert(fingerprint(str(i).encode()), i)
    assert idx.memory_bytes() == 100 * 32
    assert len(idx) == 100


def test_index_memory_growth_is_linear_in_unique_chunks():
    """§3.1: the index grows with capacity — the core scalability issue."""
    idx = FingerprintIndex()
    sizes = []
    for i in range(3000):
        idx.insert(fingerprint(str(i).encode()), i)
        if i % 1000 == 999:
            sizes.append(idx.memory_bytes())
    assert sizes[1] - sizes[0] == sizes[2] - sizes[1] > 0


def test_index_eviction_under_memory_limit():
    idx = FingerprintIndex(memory_limit=32 * 10)
    for i in range(50):
        idx.insert(fingerprint(str(i).encode()), i)
    assert len(idx) == 10
    assert idx.stats.evictions == 40
    # Old entries were evicted -> lookups miss (lost dedup opportunity).
    assert idx.lookup(fingerprint(b"0")) is None


def test_index_sampling_reduces_entries():
    full = FingerprintIndex()
    sampled = FingerprintIndex(sample_bits=4)
    for i in range(2000):
        fp = fingerprint(str(i).encode())
        full.insert(fp, i)
        sampled.insert(fp, i)
    assert len(sampled) < len(full)
    # Expect roughly 1/16 of entries.
    assert len(sampled) == pytest.approx(2000 / 16, rel=0.5)


def test_index_remove():
    idx = FingerprintIndex()
    fp = fingerprint(b"x")
    idx.insert(fp, 1)
    idx.remove(fp)
    assert idx.lookup(fp) is None
    idx.remove(fp)  # idempotent


def test_index_duplicate_insert_not_double_counted():
    idx = FingerprintIndex()
    fp = fingerprint(b"x")
    idx.insert(fp, 1)
    idx.insert(fp, 2)
    assert len(idx) == 1
    assert idx.lookup(fp) == 2


def test_invalid_sample_bits():
    with pytest.raises(ValueError):
        FingerprintIndex(sample_bits=-1)
