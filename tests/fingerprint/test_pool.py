"""FingerprintPool: ordered results, sharding, quiesce, and stats."""

import hashlib

import pytest

from repro.fingerprint import FingerprintPool, fingerprint
from repro.fingerprint.pool import _digest_shard


def payloads(n, size=3000):
    # > ~2 KiB so hashlib releases the GIL on the parallel path.
    return [bytes([i % 256]) * size for i in range(n)]


def test_results_match_serial_hashing():
    data = payloads(23)
    pool = FingerprintPool(workers=4)
    handles = pool.submit_many(data)
    digests = [h.result() for h in handles]
    assert digests == [hashlib.sha1(d).hexdigest() for d in data]
    pool.shutdown()


def test_results_ordered_per_submission():
    """Handles come back in submission order regardless of scheduling."""
    data = payloads(40, size=100)
    pool = FingerprintPool(workers=8)
    try:
        for _ in range(3):  # repeated batches reuse the executor
            handles = pool.submit_many(data)
            assert [h.result() for h in handles] == [fingerprint(d) for d in data]
    finally:
        pool.shutdown()


def test_inline_when_workers_is_one():
    pool = FingerprintPool(workers=1)
    assert not pool.parallel
    handle = pool.submit(b"abc")
    # Inline submission resolves immediately: no executor, nothing pending.
    assert handle.done
    assert pool.outstanding == 0
    assert pool._executor is None
    assert handle.result() == hashlib.sha1(b"abc").hexdigest()
    pool.shutdown()
    assert pool._executor is None


def test_submit_many_shards_at_most_workers_tasks():
    pool = FingerprintPool(workers=3)
    try:
        handles = pool.submit_many(payloads(10, size=10))
        # 10 payloads over 3 workers -> ceil(10/3)=4 per shard -> 3 shards.
        futures = {h._future for h in handles}
        assert len(futures) == 3
        assert pool.outstanding == 10
        assert len({h.result() for h in handles}) == 10
        assert pool.outstanding == 0
    finally:
        pool.shutdown()


def test_quiesce_drains_everything():
    pool = FingerprintPool(workers=4)
    try:
        pool.submit_many(payloads(12))
        assert pool.outstanding == 12
        assert pool.quiesce() == 12
        assert pool.outstanding == 0
        assert pool.quiesce() == 0  # idempotent on an empty pool
    finally:
        pool.shutdown()


def test_result_is_idempotent():
    pool = FingerprintPool(workers=2)
    try:
        (handle,) = pool.submit_many([b"x" * 100])
        first = handle.result()
        assert handle.result() == first
        assert handle.seconds >= 0.0
    finally:
        pool.shutdown()


def test_stats_accounting():
    pool = FingerprintPool(workers=2)
    try:
        for h in pool.submit_many(payloads(6)):
            h.result()
        assert pool.stats.tasks == 6
        assert pool.stats.spans == 1
        assert pool.stats.busy_seconds >= 0.0
        assert pool.stats.wall_seconds > 0.0
        for h in pool.submit_many(payloads(2)):
            h.result()
        assert pool.stats.tasks == 8
        assert pool.stats.spans == 2
    finally:
        pool.shutdown()


def test_error_settles_pending_before_raising(monkeypatch):
    """A failing digest task must not strand handles in the pool."""
    pool = FingerprintPool(workers=2)

    def boom(payloads, algorithm):
        raise RuntimeError("digest blew up")

    monkeypatch.setattr("repro.fingerprint.pool._digest_shard", boom)
    try:
        handles = pool.submit_many(payloads(4))
        assert pool.outstanding == 4
        with pytest.raises(RuntimeError, match="digest blew up"):
            handles[0].result()
        # The failed handle is settled; a retry raises the sentinel error.
        assert pool.outstanding == 3
        with pytest.raises(RuntimeError, match="already failed"):
            handles[0].result()
        # quiesce swallows the remaining failures and empties the pool.
        assert pool.quiesce() == 3
        assert pool.outstanding == 0
    finally:
        monkeypatch.setattr("repro.fingerprint.pool._digest_shard", _digest_shard)
        pool.shutdown()


def test_shutdown_idempotent():
    pool = FingerprintPool(workers=2)
    pool.submit_many(payloads(3))
    pool.shutdown()
    assert pool.outstanding == 0
    pool.shutdown()  # second call is a no-op


def test_workers_validation():
    with pytest.raises(ValueError):
        FingerprintPool(workers=0)
    assert FingerprintPool(workers=None).workers >= 1


def test_algorithm_override():
    pool = FingerprintPool(workers=1, algorithm="sha1")
    handle = pool.submit(b"payload", algorithm="sha256")
    assert handle.result() == hashlib.sha256(b"payload").hexdigest()
    pool.shutdown()


def test_empty_batch():
    pool = FingerprintPool(workers=4)
    assert pool.submit_many([]) == []
    assert pool.stats.tasks == 0
    pool.shutdown()
