"""Seeded chaos test: everything at once, then prove nothing broke.

Random writes/reads/deletes from multiple clients, the background
engine running with rate control and hot-caching, periodic OSD failures
and recoveries, plus promotion churn — followed by a full drain, GC,
scrub, replica scrub, and byte-for-byte verification against a
reference model.  Deterministic per seed.
"""

import pytest

from repro.cluster import RadosCluster, recover_sync
from repro.cluster.scrub import scrub_pool_sync
from repro.core import DedupConfig, DedupedStorage
from repro.core.scrub import collect_garbage_sync, scrub_sync
from repro.sim import RngRegistry

OIDS = [f"obj{i}" for i in range(12)]
CHUNK = 1024


def run_chaos(seed: int, refcount_mode: str = "strict", compress: bool = False):
    rng = RngRegistry(seed).stream("chaos")
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster,
        DedupConfig(
            chunk_size=CHUNK,
            dedup_interval=0.005,
            hit_count_threshold=2,
            hitset_period=0.05,
            refcount_mode=refcount_mode,
            compress_chunks=compress,
            engine_workers=4,
        ),
        start_engine=True,
    )
    model = {}
    failed = None
    for step in range(120):
        action = rng.random()
        oid = OIDS[rng.randrange(len(OIDS))]
        if action < 0.45:  # write
            offset = rng.randrange(0, 3 * CHUNK)
            length = rng.randrange(1, 2 * CHUNK)
            if rng.random() < 0.3:
                data = b"dup-block!" * ((length // 10) + 1)
                data = data[:length]
            else:
                data = rng.randbytes(length)
            storage.write_sync(oid, data, offset=offset)
            buf = model.setdefault(oid, bytearray())
            end = offset + len(data)
            if len(buf) < end:
                buf.extend(b"\x00" * (end - len(buf)))
            buf[offset:end] = data
        elif action < 0.80:  # read + verify
            if oid in model:
                expected = bytes(model[oid])
                assert storage.read_sync(oid) == expected, f"step {step}: {oid}"
        elif action < 0.88:  # delete
            if oid in model:
                storage.delete_sync(oid)
                del model[oid]
        elif action < 0.94 and failed is None:  # fail an OSD
            failed = rng.randrange(len(cluster.osds))
            cluster.fail_osd(failed)
            stats = recover_sync(cluster)
            assert stats.objects_lost == 0
        elif failed is not None:  # revive it
            cluster.revive_osd(failed)
            stats = recover_sync(cluster)
            assert stats.objects_lost == 0
            failed = None
        # Let background work interleave.
        storage.sim.run(until=storage.sim.now + rng.random() * 0.01)

    # Settle: stop the engine, drain, GC.
    storage.engine.stop()
    storage.drain()
    collect_garbage_sync(storage.tier)
    if failed is not None:
        cluster.revive_osd(failed)
        recover_sync(cluster)

    # Every surviving object is byte-identical to the model.
    for oid, buf in model.items():
        assert storage.read_sync(oid) == bytes(buf), oid
    # Dedup metadata is internally consistent...
    report = scrub_sync(storage.tier)
    assert report.clean, report
    # ...and every replica of every pool agrees.
    for pool in (storage.tier.metadata_pool, storage.tier.chunk_pool):
        assert scrub_pool_sync(cluster, pool).clean
    return storage


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_chaos_strict(seed):
    run_chaos(seed, refcount_mode="strict")


@pytest.mark.parametrize("seed", [5, 6])
def test_chaos_false_positive_refcount(seed):
    run_chaos(seed, refcount_mode="false_positive")


@pytest.mark.parametrize("seed", [7, 8])
def test_chaos_with_chunk_compression(seed):
    run_chaos(seed, compress=True)
