"""Failure-injection tests for the consistency model (paper §4.6).

The paper argues correctness step by step: a write is one transaction
(data + chunk map); the dedup flush stores the chunk + reference first
and only then clears the dirty state, so a crash at any point either
loses nothing or leaves a dirty bit that a later pass re-processes.

We reproduce those arguments by interrupting the engine mid-pass at
arbitrary points (the simulation makes "crash at step N" deterministic)
and checking that (a) reads never return wrong data, and (b) a later
drain converges to the same state as an uninterrupted run.
"""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.fingerprint import fingerprint


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def interrupted_pass(storage, oid, kill_after: float):
    """Run one dedup pass but kill it after ``kill_after`` sim-seconds."""
    sim = storage.sim
    pass_proc = sim.process(storage.engine.process_object(oid, force=True))

    def killer():
        yield sim.timeout(kill_after)
        pass_proc.interrupt("crash")

    sim.process(killer())
    sim.run()
    return pass_proc


@pytest.mark.parametrize("kill_after", [1e-6, 5e-5, 2e-4, 5e-4, 1e-3, 3e-3])
def test_crash_mid_flush_never_corrupts(kill_after):
    """Whatever instant the dedup pass dies at, data stays correct and a
    later drain converges."""
    storage = make_storage()
    payload = bytes(range(256)) * 12  # 3 chunks
    storage.write_sync("obj1", payload)
    proc = interrupted_pass(storage, "obj1", kill_after)
    # The pass either finished or was interrupted — both acceptable.
    assert proc.triggered
    # (a) reads are correct right now, whatever intermediate state the
    # crash left behind.
    assert storage.read_sync("obj1") == payload
    # (b) the dirty bits drive re-processing to the clean steady state.
    storage.tier.rebuild_dirty_list()
    storage.drain()
    assert storage.read_sync("obj1") == payload
    cmap = storage.tier.peek_chunk_map("obj1")
    assert cmap.all_clean()
    # No duplicate/garbage chunk objects: each live chunk referenced once.
    live = {e.chunk_id for e in cmap}
    pool_chunks = set(storage.cluster.list_objects(storage.tier.chunk_pool))
    assert pool_chunks == live


@pytest.mark.parametrize("kill_after", [5e-5, 3e-4, 1e-3])
def test_crash_during_overwrite_flush(kill_after):
    """Crash while flushing an overwrite (deref + re-ref in flight)."""
    storage = make_storage()
    storage.write_sync("obj1", b"OLD" * 400)
    storage.drain()
    old_fp = fingerprint((b"OLD" * 400)[:1024])
    storage.write_sync("obj1", b"NEW" * 400)
    interrupted_pass(storage, "obj1", kill_after)
    assert storage.read_sync("obj1") == b"NEW" * 400
    storage.tier.rebuild_dirty_list()
    storage.drain()
    assert storage.read_sync("obj1") == b"NEW" * 400
    # The old content's chunks are eventually dereferenced and gone.
    assert not storage.cluster.exists(storage.tier.chunk_pool, old_fp)


def test_write_transaction_is_atomic_on_all_replicas():
    """§4.6 step (1)-(2): the cached data and its dirty chunk-map state
    commit in a single transaction — no replica can hold one without
    the other."""
    storage = make_storage()
    storage.write_sync("obj1", b"x" * 2048)
    key = storage.tier.metadata_key("obj1")
    from repro.core import CHUNK_MAP_XATTR
    from repro.core.objects import decode_stored_map

    for osd in storage.cluster.osds.values():
        if not osd.store.exists(key):
            continue
        obj = osd.store.get(key)
        cmap = decode_stored_map(obj.xattrs[CHUNK_MAP_XATTR], obj.omap)
        assert len(obj.data) == cmap.logical_size()
        assert all(e.dirty and e.cached for e in cmap)


def test_reference_before_clean_invariant():
    """§4.6 step (3)-(5): the chunk object and its reference exist
    *before* the dirty bit clears, so a crash between them only
    over-retains (never loses) data."""
    storage = make_storage()
    for i in range(10):
        storage.write_sync(f"obj{i}", b"shared" * 200)
    storage.drain()
    fp = fingerprint((b"shared" * 200)[:1024])
    # Every clean entry's chunk is present and referenced.
    for i in range(10):
        cmap = storage.tier.peek_chunk_map(f"obj{i}")
        for entry in cmap:
            assert not entry.dirty
            assert storage.cluster.exists(storage.tier.chunk_pool, entry.chunk_id)
    assert storage.tier.chunk_refcount(fp) == 10


def test_redundant_flush_is_idempotent():
    """§4.6: "if reference data already exists, the ack is sent without
    storing chunk and reference data" — re-processing a dirty object
    whose chunks were already flushed changes nothing."""
    storage = make_storage()
    storage.write_sync("obj1", b"idem" * 300)
    storage.drain()
    before = storage.space_report()
    # Force re-processing by faking a dirty bit (as a crashed step-5
    # would leave behind).
    storage.tier.peek_chunk_map("obj1")
    storage.tier.mark_dirty("obj1")
    storage.drain()
    after = storage.space_report()
    assert after.chunk_objects == before.chunk_objects
    assert after.stored_bytes == before.stored_bytes
    assert storage.read_sync("obj1") == b"idem" * 300


def test_engine_crash_then_restart_via_rebuild():
    """A 'restarted' engine recovers its work queue purely from the
    persisted dirty bits (the dirty list itself is volatile)."""
    storage = make_storage()
    for i in range(6):
        storage.write_sync(f"obj{i}", bytes([i]) * 1024)
    # Kill the engine after it processed some objects.
    storage.engine.start(workers=1)
    storage.sim.run(until=storage.sim.now + 0.002)
    storage.engine.stop()
    # "Restart": a fresh engine + rebuilt dirty list.
    from repro.core import DedupEngine

    storage.engine = DedupEngine(storage.tier)
    storage.tier.rebuild_dirty_list()
    storage.drain()
    for i in range(6):
        assert storage.read_sync(f"obj{i}") == bytes([i]) * 1024
        assert storage.tier.peek_chunk_map(f"obj{i}").all_clean()
