"""Integration: dedup combined with the substrate's storage features.

The paper's headline claim is that a *self-contained* design gets high
availability, recovery, and rebalance support for free.  These tests
exercise exactly that: dedup metadata and chunk objects surviving OSD
failures, EC chunk pools, and recovery-time reduction.
"""

import pytest

from repro.cluster import ErasureCoded, RadosCluster, Replicated, recover_sync
from repro.core import DedupConfig, DedupedStorage
from repro.fingerprint import fingerprint


def make_storage(chunk_redundancy=None, **config_overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(config_overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(
        cluster,
        DedupConfig(**defaults),
        chunk_redundancy=chunk_redundancy,
        start_engine=False,
    )


def test_dedup_survives_osd_failure_and_recovery():
    storage = make_storage()
    payloads = {f"obj{i}": bytes([i]) * 3000 for i in range(20)}
    for oid, data in payloads.items():
        storage.write_sync(oid, data)
    storage.drain()
    storage.cluster.fail_osd(0)
    stats = recover_sync(storage.cluster)
    assert stats.objects_lost == 0
    for oid, data in payloads.items():
        assert storage.read_sync(oid) == data
    # Chunk maps and reference info survived with the objects.
    for oid in payloads:
        cmap = storage.tier.peek_chunk_map(oid)
        assert cmap is not None and cmap.all_clean()


def test_dedup_metadata_replicated_through_rebalance():
    storage = make_storage()
    for i in range(15):
        storage.write_sync(f"obj{i}", b"shared-content" * 100)
    storage.drain()
    storage.cluster.add_host("host-new", 2)
    stats = recover_sync(storage.cluster)
    assert stats.objects_lost == 0
    for i in range(15):
        assert storage.read_sync(f"obj{i}") == b"shared-content" * 100
    # Still deduplicated after rebalance.
    report = storage.space_report()
    assert report.chunk_objects == 2


def test_ec_chunk_pool_roundtrip_and_saving():
    """§4.2: pools pick redundancy independently — replicated metadata
    pool over an EC (2+1) chunk pool."""
    storage = make_storage(chunk_redundancy=ErasureCoded(k=2, m=1))
    for i in range(10):
        storage.write_sync(f"obj{i}", b"ecpool-data" * 200)  # duplicates
    storage.drain()
    assert storage.read_sync("obj3") == b"ecpool-data" * 200
    report = storage.space_report()
    assert report.chunk_data_bytes == 2200  # 2 unique chunks + tail
    # Raw shard payload is ~1.5x unique data (2+1), not 2x.
    pool_id = storage.tier.chunk_pool.pool_id
    shard_payload = sum(
        osd.store.get(k).allocated_bytes()
        for osd in storage.cluster.osds.values()
        for k in osd.store.keys()
        if k.pool_id == pool_id
    )
    assert shard_payload == pytest.approx(1.5 * report.chunk_data_bytes, rel=0.01)


def test_ec_chunk_pool_survives_failure():
    storage = make_storage(chunk_redundancy=ErasureCoded(k=2, m=1))
    storage.write_sync("obj1", b"important" * 300)
    storage.drain()
    fp_chunks = storage.cluster.list_objects(storage.tier.chunk_pool)
    key = storage.cluster.object_key(storage.tier.chunk_pool, fp_chunks[0])
    holder = next(
        o.osd_id for o in storage.cluster.osds.values() if o.store.exists(key)
    )
    storage.cluster.fail_osd(holder)
    stats = recover_sync(storage.cluster)
    assert stats.objects_lost == 0
    assert storage.read_sync("obj1") == b"important" * 300


def test_recovery_moves_less_data_with_dedup():
    """Table 3's mechanism: at 50% dedup, a failed OSD holds ~half the
    bytes, so recovery moves ~half the data."""

    def bytes_recovered(dedup: bool):
        cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
        if dedup:
            storage = DedupedStorage(
                cluster, DedupConfig(chunk_size=4096), start_engine=False
            )
            write = storage.write_sync
        else:
            pool = cluster.create_pool("plain", Replicated(2))

            def write(oid, data, pool=pool):
                return cluster.write_full_sync(pool, oid, data)
        # 50% duplicate stream: every payload written twice.
        for i in range(30):
            payload = bytes([i]) * 8192
            write(f"a{i}", payload)
            write(f"b{i}", payload)
        if dedup:
            storage.drain()
        for osd_id in (0, 1):
            cluster.fail_osd(osd_id)
        stats = recover_sync(cluster)
        assert stats.objects_lost == 0
        return stats.bytes_moved

    moved_plain = bytes_recovered(dedup=False)
    moved_dedup = bytes_recovered(dedup=True)
    assert moved_dedup < 0.75 * moved_plain


def test_concurrent_clients_with_background_engine():
    storage = make_storage()
    storage.engine.start()
    clients = [storage.client(f"c{i}") for i in range(3)]

    def workload(storage, client, prefix):
        for i in range(10):
            data = (prefix.encode() + bytes([i])) * 256
            yield from storage.write(f"{prefix}-{i}", data, 0, client)
            got = yield from storage.read(f"{prefix}-{i}", 0, None, client)
            assert got == data

    procs = [
        storage.sim.process(workload(storage, c, f"w{i}"))
        for i, c in enumerate(clients)
    ]
    done = storage.sim.all_of(procs)
    storage.cluster.run_wrapper = None
    storage.sim.run_until_complete(done)
    storage.sim.run(until=storage.sim.now + 20.0)
    storage.engine.stop()
    assert storage.tier.dirty_count == 0
    for i in range(3):
        for j in range(10):
            expected = (f"w{i}".encode() + bytes([j])) * 256
            assert storage.read_sync(f"w{i}-{j}") == expected


def test_double_hashing_chunk_placement_is_by_content():
    """The same content always lands on the same OSDs, regardless of
    which user object produced it (double hashing)."""
    storage = make_storage()
    storage.write_sync("x", b"D" * 1024)
    storage.write_sync("y", b"D" * 1024)
    storage.drain()
    fp = fingerprint(b"D" * 1024)
    chunk_objects = storage.cluster.list_objects(storage.tier.chunk_pool)
    assert chunk_objects == [fp]
    acting = storage.tier.chunk_pool.acting_set_for(fp)
    key = storage.cluster.object_key(storage.tier.chunk_pool, fp)
    holders = sorted(
        o.osd_id for o in storage.cluster.osds.values() if o.store.exists(key)
    )
    assert holders == sorted(acting)


def test_no_fingerprint_index_exists_anywhere():
    """The design's point: chunk lookup is pure placement computation —
    no component holds a fingerprint->address table."""
    storage = make_storage()
    for i in range(20):
        storage.write_sync(f"o{i}", b"payload" * 150)
    storage.drain()
    # Chunk location is recomputable from content alone, with no state.
    fp = fingerprint((b"payload" * 150)[:1024])
    assert storage.cluster.exists(storage.tier.chunk_pool, fp)
    # The tier holds no index structure (only transient per-chunk locks).
    assert not hasattr(storage.tier, "fingerprint_index")
