"""Dedup tier behaviour while OSDs are down (degraded mode).

The design's availability claim: because everything is ordinary
objects, the tier keeps serving (and even deduplicating) while the
cluster is degraded, exactly as the substrate does for plain data.
"""

import pytest

from repro.cluster import NotEnoughReplicas, RadosCluster, recover_sync
from repro.core import DedupConfig, DedupedStorage


def make_storage(**overrides):
    defaults = dict(chunk_size=1024, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def down_one_holder(storage, pool, oid):
    key = storage.cluster.object_key(pool, oid)
    holder = next(
        o.osd_id for o in storage.cluster.osds.values() if o.store.exists(key)
    )
    storage.cluster.cluster_map.mark_down(holder)
    return holder


def test_reads_serve_with_metadata_replica_down():
    storage = make_storage()
    storage.write_sync("obj1", b"alive" * 300)
    down_one_holder(storage, storage.tier.metadata_pool, "obj1")
    assert storage.read_sync("obj1") == b"alive" * 300


def test_reads_serve_with_chunk_replica_down():
    storage = make_storage()
    storage.write_sync("obj1", b"alive" * 300)
    storage.drain()
    chunk_id = storage.cluster.list_objects(storage.tier.chunk_pool)[0]
    down_one_holder(storage, storage.tier.chunk_pool, chunk_id)
    assert storage.read_sync("obj1") == b"alive" * 300


def test_degraded_writes_and_flush_still_work():
    storage = make_storage()
    storage.write_sync("obj1", b"v1" * 512)
    osd_id = down_one_holder(storage, storage.tier.metadata_pool, "obj1")
    storage.write_sync("obj1", b"v2" * 512)  # degraded write
    storage.drain()  # degraded flush
    assert storage.read_sync("obj1") == b"v2" * 512
    # After the OSD is marked out and recovery runs, full redundancy
    # returns and content is intact everywhere.
    storage.cluster.cluster_map.mark_out(osd_id)
    stats = recover_sync(storage.cluster)
    assert stats.objects_lost == 0
    assert storage.read_sync("obj1") == b"v2" * 512


def test_dedup_correct_across_full_degradation_cycle():
    """Write -> degrade -> keep writing -> heal -> rejoin: the dedup
    state (refcounts, maps) stays coherent throughout."""
    storage = make_storage()
    for i in range(6):
        storage.write_sync(f"a{i}", b"shared-block" * 80)
    storage.drain()
    storage.cluster.fail_osd(0)
    for i in range(6):
        storage.write_sync(f"b{i}", b"shared-block" * 80)  # degraded dups
    storage.drain()
    recover_sync(storage.cluster)
    storage.cluster.revive_osd(0)
    recover_sync(storage.cluster)
    report = storage.space_report()
    assert report.chunk_objects == 1  # still one unique chunk cluster-wide
    fp = storage.cluster.list_objects(storage.tier.chunk_pool)[0]
    assert storage.tier.chunk_refcount(fp) == 12
    for prefix in "ab":
        for i in range(6):
            assert storage.read_sync(f"{prefix}{i}") == b"shared-block" * 80
    from repro.core import scrub_sync

    assert scrub_sync(storage.tier).clean


def test_write_refused_when_below_min_size():
    storage = make_storage()
    storage.write_sync("obj1", b"x" * 1024)
    key = storage.tier.metadata_key("obj1")
    holders = [
        o.osd_id for o in storage.cluster.osds.values() if o.store.exists(key)
    ]
    for osd_id in holders:
        storage.cluster.cluster_map.mark_down(osd_id)
    with pytest.raises(NotEnoughReplicas):
        storage.write_sync("obj1", b"y" * 1024)
