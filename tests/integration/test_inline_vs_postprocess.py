"""Cross-system equivalence: inline and post-processing dedup converge.

Both designs must end at the same deduplicated state for the same input
stream — the paper's argument is about *when* the work happens (and what
that does to foreground latency), not about what is stored.
"""


from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage, InlineDedupStorage
from repro.workloads import ContentGenerator

KiB = 1024


def write_stream(storage, seed=3):
    gen = ContentGenerator(seed=seed, dedupe_ratio=0.6)
    payloads = {}
    for i in range(20):
        data = gen.block(4 * KiB)
        storage.write_sync(f"obj{i}", data)
        payloads[f"obj{i}"] = data
    return payloads


def chunk_pool_state(storage):
    pool = storage.tier.chunk_pool
    state = {}
    for chunk_id in storage.cluster.list_objects(pool):
        state[chunk_id] = storage.tier.chunk_refcount(chunk_id)
    return state


def test_same_stream_same_chunk_pool():
    config = dict(chunk_size=4 * KiB, cache_on_flush=False)
    post = DedupedStorage(
        RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32),
        DedupConfig(**config),
        start_engine=False,
    )
    inline = InlineDedupStorage(
        RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32),
        DedupConfig(**config),
    )
    payloads_post = write_stream(post)
    payloads_inline = write_stream(inline)
    assert payloads_post == payloads_inline  # same deterministic stream
    post.drain()
    # Identical chunk objects with identical reference counts.
    assert chunk_pool_state(post) == chunk_pool_state(inline)
    # Identical logical content.
    for oid, data in payloads_post.items():
        assert post.read_sync(oid) == data
        assert inline.read_sync(oid) == data


def test_post_processing_write_latency_beats_inline():
    """The design's point: same end state, cheaper foreground writes."""
    config = dict(chunk_size=4 * KiB)
    post = DedupedStorage(
        RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32),
        DedupConfig(**config),
        start_engine=False,
    )
    inline = InlineDedupStorage(
        RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32),
        DedupConfig(**config),
    )

    def mean_write_latency(storage):
        gen = ContentGenerator(seed=9, dedupe_ratio=0.0)
        t0 = storage.sim.now
        for i in range(20):
            storage.write_sync(f"w{i}", gen.block(4 * KiB))
        return (storage.sim.now - t0) / 20

    assert mean_write_latency(post) < mean_write_latency(inline)
