"""Model-based property tests: the dedup store vs a plain byte-buffer model.

Hypothesis drives random sequences of writes (any offset/length),
reads, dedup drains, cache demotions, and OSD failures against
:class:`DedupedStorage`, checking every read against a reference
implementation (plain Python buffers).  This is the strongest
correctness net in the suite: any divergence between the tiered,
deduplicated, replicated representation and plain buffers fails here.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import RadosCluster, recover_sync
from repro.core import DedupConfig, DedupedStorage

OIDS = ["alpha", "beta", "gamma"]
CHUNK = 512


def make_storage(hot_threshold=2):
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    config = DedupConfig(
        chunk_size=CHUNK,
        dedup_interval=0.01,
        hit_count_threshold=hot_threshold,
        hitset_period=0.1,
    )
    return DedupedStorage(cluster, config, start_engine=False)


class ReferenceModel:
    """Plain in-memory byte buffers with identical write/read semantics."""

    def __init__(self):
        self.objects = {}

    def write(self, oid, offset, data):
        buf = self.objects.setdefault(oid, bytearray())
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data

    def read(self, oid, offset, length):
        buf = self.objects.get(oid)
        if buf is None:
            return None
        return bytes(buf[offset : offset + length])


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.sampled_from(OIDS),
            st.integers(min_value=0, max_value=3 * CHUNK),
            st.binary(min_size=1, max_size=2 * CHUNK),
        ),
        st.tuples(
            st.just("read"),
            st.sampled_from(OIDS),
            st.integers(min_value=0, max_value=3 * CHUNK),
            st.integers(min_value=1, max_value=2 * CHUNK),
        ),
        st.tuples(st.just("drain"), st.none(), st.none(), st.none()),
    ),
    min_size=1,
    max_size=25,
)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_storage_matches_reference_model(ops):
    storage = make_storage()
    model = ReferenceModel()
    for op, oid, a, b in ops:
        if op == "write":
            storage.write_sync(oid, b, offset=a)
            model.write(oid, a, b)
        elif op == "read":
            expected = model.read(oid, a, b)
            if expected is None:
                continue
            got = storage.read_sync(oid, offset=a, length=b)
            assert got == expected
        else:
            storage.drain()
    # Final sweep: every object reads back whole and identical.
    storage.drain()
    for oid, buf in model.objects.items():
        assert storage.read_sync(oid) == bytes(buf)


@given(ops=ops_strategy, fail_osd=st.integers(min_value=0, max_value=7))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_storage_survives_failure_mid_sequence(ops, fail_osd):
    """Same as above, plus an OSD failure + recovery midway through."""
    storage = make_storage()
    model = ReferenceModel()
    half = len(ops) // 2
    for i, (op, oid, a, b) in enumerate(ops):
        if i == half:
            storage.cluster.fail_osd(fail_osd)
            stats = recover_sync(storage.cluster)
            assert stats.objects_lost == 0
        if op == "write":
            storage.write_sync(oid, b, offset=a)
            model.write(oid, a, b)
        elif op == "read":
            expected = model.read(oid, a, b)
            if expected is None:
                continue
            assert storage.read_sync(oid, offset=a, length=b) == expected
        else:
            storage.drain()
    storage.drain()
    for oid, buf in model.objects.items():
        assert storage.read_sync(oid) == bytes(buf)


@given(
    writes=st.lists(
        st.tuples(
            st.sampled_from(OIDS),
            st.integers(min_value=0, max_value=2 * CHUNK),
            st.binary(min_size=1, max_size=CHUNK),
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dedup_state_invariants_after_drain(writes):
    """After a full drain: no dirty entries, every referenced chunk
    object exists, its content matches its fingerprint (double hashing),
    and no orphan chunk objects remain."""
    from repro.fingerprint import fingerprint

    storage = make_storage()
    for oid, offset, data in writes:
        storage.write_sync(oid, data, offset=offset)
    storage.drain()
    live = set()
    for oid in storage.cluster.list_objects(storage.tier.metadata_pool):
        cmap = storage.tier.peek_chunk_map(oid)
        assert cmap.all_clean()
        for entry in cmap:
            assert entry.chunk_id
            live.add(entry.chunk_id)
            assert storage.cluster.exists(storage.tier.chunk_pool, entry.chunk_id)
            content = storage.cluster.read_sync(
                storage.tier.chunk_pool, entry.chunk_id
            )
            assert fingerprint(content) == entry.chunk_id
            assert storage.tier.chunk_refcount(entry.chunk_id) >= 1
    pool_chunks = set(storage.cluster.list_objects(storage.tier.chunk_pool))
    assert pool_chunks == live
