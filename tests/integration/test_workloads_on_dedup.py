"""Workload generators driving the full dedup stack end-to-end."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.workloads import (
    SfsDatabaseSpec,
    SfsDatabaseWorkload,
    Trace,
    TraceOp,
    VmImagePopulation,
    VmPopulationSpec,
)

KiB = 1024


def make_storage(**overrides):
    defaults = dict(chunk_size=8 * KiB, dedup_interval=0.01)
    defaults.update(overrides)
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    return DedupedStorage(cluster, DedupConfig(**defaults), start_engine=False)


def test_sfs_workload_on_dedup_storage():
    storage = make_storage()
    spec = SfsDatabaseSpec(
        load=1,
        ops_per_load=100,
        dataset_per_load=256 * KiB,
        block_size=8 * KiB,
        object_size=64 * KiB,
        duration=1.0,
        dedupe_ratio=0.7,
    )
    wl = SfsDatabaseWorkload(storage, spec)
    wl.prefill()
    result = wl.run()
    assert result.completed_ops == result.requested_ops
    storage.drain()
    report = storage.space_report()
    assert report.ideal_dedup_ratio > 0.3


def test_trace_replay_on_dedup_storage():
    storage = make_storage()
    trace = Trace(
        [
            TraceOp(at=0.0, op="write", oid="t1", offset=0, length=8 * KiB, content_seed=1),
            TraceOp(at=0.1, op="write", oid="t2", offset=0, length=8 * KiB, content_seed=1),
            TraceOp(at=0.2, op="read", oid="t1", offset=0, length=8 * KiB),
        ]
    )
    trace.replay_sync(storage)
    storage.drain()
    assert storage.read_sync("t1") == storage.read_sync("t2")
    # Identical trace content -> one chunk.
    assert storage.space_report().chunk_objects == 1


def test_vm_population_striped_onto_dedup_storage():
    storage = make_storage(chunk_size=16 * KiB)
    spec = VmPopulationSpec(
        num_vms=3,
        image_size=512 * KiB,
        block_size=64 * KiB,
        os_base_fraction=0.75,
        common_fraction=0.0,
        seed=4,
    )
    population = VmImagePopulation(spec)
    population.write_all(storage, object_size=128 * KiB)
    storage.drain()
    report = storage.space_report()
    assert report.logical_bytes == 3 * 512 * KiB
    # The shared 75% base is stored once.
    assert report.ideal_dedup_ratio == pytest.approx(0.5, abs=0.05)
