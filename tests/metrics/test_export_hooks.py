"""The ``export_to(registry)`` hooks: every collector lands in one
registry, and the latency percentile stays clamped at the float edges."""

import pytest

from repro.cluster import RadosCluster, Replicated
from repro.faults.injector import FaultStats
from repro.metrics import (
    LatencyRecorder,
    ThroughputSeries,
    cpu_usage,
    storage_breakdown,
)
from repro.metrics.faults import FaultReport
from repro.obs import MetricsRegistry


def test_latency_percentile_float_rank_stays_in_bounds():
    # Regression: p/100 * (n-1) can round a hair past the last index for
    # p just under 100; the interpolation indices must clamp, not raise.
    rec = LatencyRecorder()
    for v in range(1, 30):
        rec.record(float(v))
    for p in (99.99999999999999, 100.0 - 1e-12, 100.0):
        assert rec.percentile(p) == pytest.approx(29.0)
    assert rec.percentile(0.0) == 1.0


def test_latency_export_builds_labeled_histograms():
    reg = MetricsRegistry()
    reads = LatencyRecorder(name="read")
    writes = LatencyRecorder(name="write")
    for v in (0.001, 0.002, 0.4):
        reads.record(v)
    writes.record(0.05)
    reads.export_to(reg)
    writes.export_to(reg)  # same family, second label: must not clash
    family = reg.get("repro_op_latency_seconds")
    assert family.kind == "histogram"
    assert family.labels(op="read").count == 3
    assert family.labels(op="read").sum == pytest.approx(0.403)
    assert family.labels(op="write").count == 1
    unnamed = LatencyRecorder()
    unnamed.record(1.0)
    unnamed.export_to(reg)
    assert family.labels(op="all").count == 1


def test_throughput_export_sets_series_gauges():
    reg = MetricsRegistry()
    series = ThroughputSeries(interval=1.0, name="fio")
    series.note(0.0, 600)
    series.note(1.0, 200)
    series.export_to(reg)
    get = lambda name: reg.get(name).labels(series="fio").value  # noqa: E731
    assert get("repro_throughput_bytes_total") == 800.0
    assert get("repro_throughput_ops_total") == 2.0
    assert get("repro_throughput_mean_bps") == 400.0
    assert get("repro_throughput_min_bps") == 200.0


def test_fault_report_export_with_and_without_injector():
    reg = MetricsRegistry()
    FaultReport().export_to(reg)  # no injector attached: faults is None
    assert reg.get("repro_availability").labels().value == 1.0
    assert reg.get("repro_fault_events") is None
    injected = FaultReport(faults=FaultStats(), down_osds=[3, 7])
    injected.export_to(reg)
    assert reg.get("repro_fault_events") is not None
    assert reg.get("repro_down_osds").labels().value == 2.0
    assert reg.get("repro_retry_stats") is not None


def test_cluster_usage_collectors_export_into_one_registry():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1, pg_num=16)
    pool = cluster.create_pool("p", Replicated(2))
    cluster.write_full_sync(pool, "o", b"x" * 1000)
    reg = MetricsRegistry()
    cpu_usage(cluster).export_to(reg)
    storage_breakdown(cluster).export_to(reg)
    nodes = reg.get("repro_cpu_utilization")
    assert len(nodes) == 2
    assert reg.get("repro_pool_used_bytes").labels(pool="p").value >= 2000
    assert (
        reg.get("repro_used_bytes_total").labels().value
        == reg.get("repro_pool_used_bytes").labels(pool="p").value
    )
    # Exporting again into the same registry overwrites, never errors.
    cpu_usage(cluster).export_to(reg)
    storage_breakdown(cluster).export_to(reg)
