"""Tests for latency recorder, throughput series, and usage snapshots."""

import pytest

from repro.cluster import RadosCluster, Replicated
from repro.metrics import (
    LatencyRecorder,
    ThroughputSeries,
    cpu_usage,
    storage_breakdown,
)


def test_latency_basic_stats():
    rec = LatencyRecorder()
    for v in [1.0, 2.0, 3.0, 4.0]:
        rec.record(v)
    assert rec.count == 4
    assert rec.mean == 2.5
    assert rec.minimum == 1.0
    assert rec.maximum == 4.0
    assert rec.p50 == 2.5


def test_latency_percentiles():
    rec = LatencyRecorder()
    for v in range(1, 101):
        rec.record(float(v))
    assert rec.percentile(0) == 1.0
    assert rec.percentile(100) == 100.0
    assert rec.p99 == pytest.approx(99.01)
    assert rec.percentile(50) == pytest.approx(50.5)


def test_latency_empty():
    rec = LatencyRecorder()
    assert rec.mean == 0.0
    assert rec.p50 == 0.0
    assert rec.summary()["count"] == 0


def test_latency_single_sample():
    rec = LatencyRecorder()
    rec.record(5.0)
    assert rec.percentile(37) == 5.0


def test_latency_validation():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-1.0)
    with pytest.raises(ValueError):
        rec.percentile(101)


def test_latency_merge():
    a, b = LatencyRecorder(), LatencyRecorder()
    a.record(1.0)
    b.record(3.0)
    a.merge(b)
    assert a.count == 2
    assert a.mean == 2.0


def test_series_buckets_and_gaps():
    s = ThroughputSeries(interval=1.0)
    s.note(0.5, 100)
    s.note(0.9, 100)
    s.note(3.2, 300)
    points = dict(s.series())
    assert points[0.0] == 200.0
    assert points[1.0] == 0.0  # gap filled
    assert points[3.0] == 300.0
    assert s.total_bytes == 500
    assert s.total_ops == 3


def test_series_min_and_mean():
    s = ThroughputSeries(interval=1.0)
    s.note(0.0, 600)
    s.note(1.0, 200)
    s.note(2.0, 400)
    assert s.min_throughput() == 200.0
    assert s.mean_throughput() == 400.0


def test_series_empty():
    s = ThroughputSeries()
    assert s.series() == []
    assert s.mean_throughput() == 0.0


def test_series_invalid_interval():
    with pytest.raises(ValueError):
        ThroughputSeries(interval=0)


def test_cpu_usage_snapshot():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1)
    snap = cpu_usage(cluster)
    assert set(snap.per_node) == {"host0", "host1"}
    assert snap.mean == 0.0
    assert snap.mean_percent == 0.0


def test_cpu_usage_reflects_work():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1)
    node = cluster.nodes["host0"]

    def burn():
        yield from node.cpu.execute(1.0)
        yield cluster.sim.timeout(1.0)

    cluster.run(burn())
    snap = cpu_usage(cluster)
    assert snap.per_node["host0"] > 0
    assert snap.per_node["host1"] == 0.0


def test_storage_breakdown():
    cluster = RadosCluster(num_hosts=2, osds_per_host=1, pg_num=16)
    pool = cluster.create_pool("p", Replicated(2))
    cluster.write_full_sync(pool, "o", b"x" * 1000)
    bd = storage_breakdown(cluster)
    assert bd.per_pool["p"] >= 2000
    assert bd.total == bd.per_pool["p"]
