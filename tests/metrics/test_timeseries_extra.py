"""Additional coverage for throughput series and FIO result plumbing."""


from repro.cluster import RadosCluster
from repro.core import PlainStorage
from repro.metrics import ThroughputSeries
from repro.workloads import FioJobSpec, FioRunner

KiB = 1024


def test_ops_series_counts_operations():
    s = ThroughputSeries(interval=1.0)
    for t in (0.1, 0.2, 0.3, 1.5):
        s.note(t, 10)
    points = dict(s.ops_series())
    assert points[0.0] == 3.0
    assert points[1.0] == 1.0


def test_ops_series_empty():
    assert ThroughputSeries().ops_series() == []


def test_custom_interval_buckets():
    s = ThroughputSeries(interval=0.5)
    s.note(0.0, 100)
    s.note(0.6, 100)
    points = dict(s.series())
    assert points[0.0] == 200.0  # 100 bytes / 0.5 s
    assert points[0.5] == 200.0


def test_fio_result_series_populated():
    storage = PlainStorage(RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16))
    spec = FioJobSpec(
        pattern="write",
        block_size=4 * KiB,
        file_size=64 * KiB,
        object_size=16 * KiB,
    )
    result = FioRunner(storage, spec).run()
    assert result.series.total_bytes == 64 * KiB
    assert result.series.total_ops == result.total_ops


def test_fio_sequential_wraps_with_runtime():
    storage = PlainStorage(RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16))
    spec = FioJobSpec(
        pattern="write",
        block_size=4 * KiB,
        file_size=16 * KiB,
        object_size=16 * KiB,
        runtime=0.02,
    )
    result = FioRunner(storage, spec).run()
    # Far more ops than one pass over the 4-block file: it wrapped.
    assert result.total_ops > 8
    assert len(storage.read_sync("fio.j0.o0")) == 16 * KiB
