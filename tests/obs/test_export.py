"""Exporter tests: JSONL roundtrip and Prometheus text exposition."""

import json

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    dump_trace_jsonl,
    load_trace_jsonl,
    prometheus_text,
    trace_jsonl_lines,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.5
        return self.t


def sample_records():
    tracer = Tracer(FakeClock())
    with tracer.root_span("op.write", oid="x") as root:
        with root.child("tier.commit", pg=3) as child:
            child.annotate("retry", attempt=1)
    return tracer.to_records()


def test_jsonl_roundtrip(tmp_path):
    records = sample_records()
    path = str(tmp_path / "trace.jsonl")
    count = dump_trace_jsonl(records, path)
    assert count == 2
    assert load_trace_jsonl(path) == records


def test_jsonl_lines_are_compact_and_key_sorted():
    lines = trace_jsonl_lines(sample_records())
    for line in lines:
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)
        assert ": " not in line  # compact separators
    # Records keep tracer creation order: root first.
    assert json.loads(lines[0])["parent_id"] is None


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('\n{"span_id": 1}\n\n{"span_id": 2}\n')
    assert [r["span_id"] for r in load_trace_jsonl(str(path))] == [1, 2]


def test_prometheus_text_families_and_samples():
    reg = MetricsRegistry()
    reg.counter("repro_ops_total", "Total ops", labels=("op",)).labels(
        op="write"
    ).inc(3)
    reg.gauge("repro_depth", "Queue depth").set(2.5)
    text = prometheus_text(reg)
    assert "# HELP repro_ops_total Total ops" in text
    assert "# TYPE repro_ops_total counter" in text
    assert 'repro_ops_total{op="write"} 3' in text
    assert "repro_depth 2.5" in text
    assert text.endswith("\n")


def test_prometheus_text_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    hist = reg.histogram("repro_lat", "Latency", buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 9.0):
        hist.observe(v)
    text = prometheus_text(reg)
    assert 'repro_lat_bucket{le="1.0"} 1' in text
    assert 'repro_lat_bucket{le="2.0"} 2' in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_sum 11" in text
    assert "repro_lat_count 3" in text


def test_prometheus_text_escapes_label_values():
    reg = MetricsRegistry()
    reg.gauge("repro_g", labels=("k",)).labels(k='a"b\\c\nd').set(1)
    text = prometheus_text(reg)
    assert 'k="a\\"b\\\\c\\nd"' in text


def test_prometheus_text_is_insertion_order_independent():
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for reg, order in ((forward, ("a", "b")), (backward, ("b", "a"))):
        for name in order:
            reg.counter(f"repro_{name}_total", labels=("k",))
        for key in order:
            reg.counter("repro_a_total", labels=("k",)).labels(k=key).inc()
            reg.counter("repro_b_total", labels=("k",)).labels(k=key).inc()
    assert prometheus_text(forward) == prometheus_text(backward)


def test_empty_registry_renders_empty_string():
    assert prometheus_text(MetricsRegistry()) == ""
