"""check_trace / coverage / rollup / top_spans on hand-built records."""

from repro.obs import check_trace, stage_rollup
from repro.obs.integrity import coverage_by_root, top_spans


def rec(span_id, parent_id, trace_id, stage, start, end, **tags):
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "stage": stage,
        "start": start,
        "end": end,
        "tags": tags,
        "events": [],
    }


def clean_trace():
    return [
        rec(1, None, 1, "op.write", 0.0, 10.0),
        rec(2, 1, 1, "engine.chunk", 0.0, 4.0),
        rec(3, 1, 1, "tier.commit", 4.0, 10.0),
        rec(4, 3, 1, "rados.submit", 5.0, 9.0),
    ]


def test_clean_trace_passes():
    assert check_trace(clean_trace()) == []
    assert (
        check_trace(
            clean_trace(),
            required_stages=("op.", "engine.", "tier.", "rados."),
        )
        == []
    )


def test_unfinished_span_is_reported():
    records = clean_trace()
    records[2]["end"] = None
    problems = check_trace(records)
    assert any("never finished" in p for p in problems)


def test_end_before_start_is_reported():
    records = [rec(1, None, 1, "op.write", 5.0, 1.0)]
    assert any("ends before it starts" in p for p in check_trace(records))


def test_orphan_parent_is_reported():
    records = [rec(2, 99, 1, "tier.commit", 0.0, 1.0)]
    assert any("orphaned" in p for p in check_trace(records))


def test_cross_trace_parent_is_reported():
    records = [
        rec(1, None, 1, "op.write", 0.0, 10.0),
        rec(2, 1, 7, "tier.commit", 0.0, 10.0),  # wrong trace_id
    ]
    assert any("crosses traces" in p for p in check_trace(records))


def test_child_escaping_parent_interval_is_reported():
    records = [
        rec(1, None, 1, "op.write", 0.0, 10.0),
        rec(2, 1, 1, "tier.commit", 8.0, 12.0),  # runs past the parent
    ]
    assert any("escapes its parent" in p for p in check_trace(records))


def test_missing_required_stage_is_reported():
    problems = check_trace(clean_trace(), required_stages=("cache.",))
    assert any("cache." in p for p in problems)


def test_duplicate_span_ids_are_reported():
    records = [
        rec(1, None, 1, "op.write", 0.0, 1.0),
        rec(1, None, 1, "op.read", 0.0, 1.0),
    ]
    assert any("duplicate span ids" in p for p in check_trace(records))


def test_low_coverage_root_is_reported():
    records = [
        rec(1, None, 1, "op.write", 0.0, 10.0),
        rec(2, 1, 1, "tier.commit", 0.0, 5.0),  # only half the root covered
    ]
    problems = check_trace(records, coverage_threshold=0.95)
    assert any("covered by child spans" in p for p in problems)
    assert check_trace(records, coverage_threshold=0.5) == []


def test_coverage_unions_overlapping_children():
    records = [
        rec(1, None, 1, "op.write", 0.0, 10.0),
        # Two overlapping children spanning [0, 6] and [4, 10]: union is
        # the whole root, and the overlap must not double-count.
        rec(2, 1, 1, "tier.a", 0.0, 6.0),
        rec(3, 1, 1, "tier.b", 4.0, 10.0),
    ]
    coverage = coverage_by_root(records)
    assert coverage == {1: 1.0}


def test_coverage_skips_zero_duration_roots():
    records = [rec(1, None, 1, "op.noop", 3.0, 3.0)]
    assert coverage_by_root(records) == {}
    # ...and check_trace therefore doesn't flag them either.
    assert check_trace(records) == []


def test_stage_rollup_aggregates_by_stage():
    records = [
        rec(1, None, 1, "op.write", 0.0, 4.0),
        rec(2, None, 2, "op.write", 0.0, 2.0),
        rec(3, 1, 1, "tier.commit", 0.0, 1.0),
        rec(4, None, 4, "op.open", 0.0, None),  # unfinished: excluded
    ]
    rollup = stage_rollup(records)
    assert list(rollup) == ["op.write", "tier.commit"]  # sorted
    assert rollup["op.write"]["count"] == 2
    assert rollup["op.write"]["seconds"] == 6.0
    assert rollup["op.write"]["mean"] == 3.0
    assert rollup["op.write"]["max"] == 4.0


def test_top_spans_orders_filters_and_limits():
    records = [
        rec(1, None, 1, "op.write", 0.0, 1.0),
        rec(2, None, 2, "op.read", 0.0, 5.0),
        rec(3, None, 3, "tier.commit", 0.0, 3.0),
        rec(4, None, 4, "op.open", 0.0, None),  # unfinished: excluded
        rec(5, None, 5, "op.delete", 0.0, 5.0),  # same duration as span 2
    ]
    ordered = [r["span_id"] for r in top_spans(records)]
    assert ordered == [2, 5, 3, 1]  # ties break on span id
    assert [r["span_id"] for r in top_spans(records, limit=2)] == [2, 5]
    only_ops = top_spans(records, stage_prefix="op.")
    assert all(r["stage"].startswith("op.") for r in only_ops)
