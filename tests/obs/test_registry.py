"""MetricsRegistry unit tests: families, labels, cardinality, buckets."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    CardinalityError,
    Histogram,
    MetricsRegistry,
)


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    counter = reg.counter("repro_ops_total", "ops")
    counter.inc()
    counter.inc(2.5)
    assert counter.labels().value == 3.5
    with pytest.raises(ValueError):
        counter.labels().inc(-1)
    gauge = reg.gauge("repro_depth", "queue depth")
    gauge.set(7)
    gauge.inc(3)
    gauge.dec(1)
    assert gauge.labels().value == 9.0


def test_labels_must_match_registered_names():
    reg = MetricsRegistry()
    family = reg.counter("repro_hits_total", labels=("op", "result"))
    family.labels(op="read", result="hit").inc()
    with pytest.raises(ValueError):
        family.labels(op="read")  # missing "result"
    with pytest.raises(ValueError):
        family.labels(op="read", result="hit", extra="x")


def test_label_cardinality_cap_fails_fast():
    reg = MetricsRegistry(max_series_per_family=4)
    family = reg.counter("repro_chunks_total", labels=("chunk",))
    for i in range(4):
        family.labels(chunk=f"c{i}").inc()
    with pytest.raises(CardinalityError):
        family.labels(chunk="c4")
    # Existing series stay addressable after the cap trips.
    family.labels(chunk="c0").inc()
    assert len(family) == 4


def test_registration_is_idempotent_but_shape_checked():
    reg = MetricsRegistry()
    first = reg.counter("repro_ops_total", labels=("op",))
    again = reg.counter("repro_ops_total", labels=("op",))
    assert again is first
    with pytest.raises(ValueError):
        reg.gauge("repro_ops_total", labels=("op",))  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("repro_ops_total", labels=("other",))  # label mismatch
    hist = reg.histogram("repro_lat", buckets=(0.1, 1.0))
    assert reg.histogram("repro_lat", buckets=(0.1, 1.0)) is hist
    with pytest.raises(ValueError):
        reg.histogram("repro_lat", buckets=(0.5, 1.0))  # bucket mismatch


def test_name_and_label_validation():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("9starts_with_digit")
    with pytest.raises(ValueError):
        reg.counter("repro_ok", labels=("bad-label",))
    with pytest.raises(ValueError):
        reg.counter("repro_dup", labels=("a", "a"))


def test_histogram_bucket_boundaries_are_upper_inclusive():
    hist = Histogram(buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 1.5, 2.0, 5.0, 9.0):
        hist.observe(value)
    # le semantics: a sample equal to a boundary lands in that bucket.
    assert hist.counts == [2, 2, 1, 1]  # (<=1, <=2, <=5, +Inf)
    assert hist.count == 6
    assert hist.sum == pytest.approx(19.0)
    assert hist.min == 0.5
    assert hist.max == 9.0
    assert hist.mean == pytest.approx(19.0 / 6)


def test_histogram_bucket_validation():
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(buckets=(2.0, 1.0))


def test_histogram_quantile_edges():
    hist = Histogram(buckets=(1.0, 2.0))
    assert hist.quantile(0.5) == 0.0  # empty
    hist.observe(0.4)
    hist.observe(1.6)
    assert hist.quantile(0.0) == 0.4  # exact observed min
    assert hist.quantile(1.0) == 1.6  # exact observed max
    mid = hist.quantile(0.5)
    assert 0.4 <= mid <= 1.6
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_default_buckets_are_strictly_increasing():
    assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))


def test_to_dict_is_sorted_and_json_ready():
    import json

    reg = MetricsRegistry()
    # Register out of order; export must sort by family then labels.
    reg.gauge("repro_z", labels=("k",)).labels(k="2").set(2)
    reg.gauge("repro_z", labels=("k",)).labels(k="1").set(1)
    reg.counter("repro_a").inc(3)
    reg.histogram("repro_h", buckets=(1.0,)).observe(0.5)
    doc = reg.to_dict()
    assert list(doc) == ["repro_a", "repro_h", "repro_z"]
    assert [s["labels"]["k"] for s in doc["repro_z"]["series"]] == ["1", "2"]
    hist_series = doc["repro_h"]["series"][0]
    assert hist_series["count"] == 1
    assert hist_series["buckets"] == [(1.0, 1)]
    assert hist_series["overflow"] == 0
    json.dumps(doc)  # must serialize without custom encoders
