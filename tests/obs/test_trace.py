"""Tracer/Span unit tests: tree shape, lifecycle, null behaviour, caps."""

from repro.obs import NULL_SPAN, NullSpan, Span, Tracer


class FakeClock:
    """Manual clock so span times are exact."""

    def __init__(self) -> None:
        self.t = 0.0

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def test_span_tree_ids_and_trace_propagation():
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.root_span("op.write", oid="a")
    child = root.child("tier.lock_wait")
    grand = child.child("rados.submit", pg=3)
    assert (root.span_id, child.span_id, grand.span_id) == (1, 2, 3)
    assert child.parent_id == root.span_id
    assert grand.parent_id == child.span_id
    assert root.parent_id is None
    # Every descendant shares the root's trace id.
    assert root.trace_id == child.trace_id == grand.trace_id == root.span_id
    assert root.tags == {"oid": "a"}
    assert grand.tags == {"pg": 3}
    assert len(tracer) == 3


def test_finish_is_idempotent_and_duration_uses_clock():
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.root_span("op.read")
    assert span.duration == 0.0  # still open
    clock.tick(2.5)
    span.finish()
    clock.tick(10.0)
    span.finish()  # second finish must not move the end time
    assert span.end == 2.5
    assert span.duration == 2.5


def test_with_block_finishes_and_annotates_errors():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.root_span("op.write") as span:
        clock.tick()
    assert span.end == 1.0
    try:
        with tracer.root_span("op.read") as failing:
            raise KeyError("nope")
    except KeyError:
        pass
    assert failing.end is not None
    assert failing.events is not None
    assert failing.events[0]["kind"] == "error"
    assert failing.events[0]["type"] == "KeyError"


def test_annotate_events_are_lazy_and_timestamped():
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.root_span("op.write")
    assert span.events is None  # no allocation until first event
    clock.tick(3.0)
    span.annotate("timeout", op="submit")
    assert span.events == [{"kind": "timeout", "t": 3.0, "op": "submit"}]
    record = span.to_record()
    assert record["events"][0]["kind"] == "timeout"


def test_null_span_is_a_no_op_singleton():
    assert isinstance(NULL_SPAN, NullSpan)
    assert NULL_SPAN.child("anything") is NULL_SPAN
    NULL_SPAN.tag(x=1)
    NULL_SPAN.annotate("whatever")
    NULL_SPAN.finish()
    with NULL_SPAN as span:
        assert span is NULL_SPAN
    assert NULL_SPAN.tags == {}
    assert NULL_SPAN.duration == 0.0


def test_disabled_tracer_buffers_nothing():
    tracer = Tracer(FakeClock(), enabled=False)
    span = tracer.root_span("op.write")
    assert span is NULL_SPAN
    assert span.child("tier.route") is NULL_SPAN
    assert len(tracer) == 0
    assert tracer.to_records() == []


def test_child_of_null_span_stays_null():
    # An enabled tracer must not fabricate orphans under a null parent.
    tracer = Tracer(FakeClock())
    assert tracer.start_span("tier.route", parent=NULL_SPAN) is NULL_SPAN
    assert len(tracer) == 0


def test_max_spans_cap_counts_drops():
    tracer = Tracer(FakeClock(), max_spans=2)
    a = tracer.root_span("op.1")
    b = tracer.root_span("op.2")
    c = tracer.root_span("op.3")
    d = a.child("stage")
    assert isinstance(a, Span) and a is not NULL_SPAN
    assert b is not NULL_SPAN
    assert c is NULL_SPAN and d is NULL_SPAN
    assert len(tracer) == 2
    assert tracer.dropped == 2


def test_clear_keeps_id_sequence_monotonic():
    tracer = Tracer(FakeClock(), max_spans=1)
    tracer.root_span("op.1")
    tracer.root_span("op.2")  # dropped
    assert tracer.dropped == 1
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
    again = tracer.root_span("op.3")
    assert again.span_id == 2  # ids never reused across clear()


def test_to_record_shape():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.root_span("op.write", oid="x") as span:
        clock.tick()
    record = span.to_record()
    assert record == {
        "span_id": 1,
        "parent_id": None,
        "trace_id": 1,
        "stage": "op.write",
        "start": 0.0,
        "end": 1.0,
        "tags": {"oid": "x"},
        "events": [],
    }
