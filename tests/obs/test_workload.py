"""End-to-end obs tests: traced workloads, the CLI, and collectors."""

from repro.cli import main
from repro.obs import check_trace
from repro.obs.cli import REQUIRED_STAGE_PREFIXES, run_traced_workload
from repro.obs.collect import storage_metrics
from repro.obs.export import load_trace_jsonl

KiB = 1024


def test_traced_workload_satisfies_the_obs_smoke_contract():
    storage = run_traced_workload(seed=3, objects=12)
    records = storage.tracer.to_records()
    assert records
    problems = check_trace(
        records,
        required_stages=REQUIRED_STAGE_PREFIXES,
        coverage_threshold=0.95,
    )
    assert problems == []
    roots = {r["stage"] for r in records if r["parent_id"] is None}
    assert {"op.write", "op.dedup_pass", "op.read", "op.delete"} <= roots


def test_traced_workload_is_deterministic():
    first = run_traced_workload(seed=7, objects=10).tracer.to_records()
    second = run_traced_workload(seed=7, objects=10).tracer.to_records()
    assert first == second  # bit-for-bit: ids, stages, times, tags


def test_tracing_does_not_perturb_the_simulation():
    from repro.cluster import RadosCluster
    from repro.core import DedupConfig, DedupedStorage
    from repro.workloads import ContentGenerator

    def run(trace_ops):
        cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
        storage = DedupedStorage(
            cluster,
            DedupConfig(chunk_size=16 * KiB, trace_ops=trace_ops),
            start_engine=False,
        )
        gen = ContentGenerator(seed=5, dedupe_ratio=0.6)
        for i in range(8):
            storage.write_sync(f"o-{i}", gen.block(32 * KiB))
        storage.drain()
        data = [storage.read_sync(f"o-{i}") for i in range(8)]
        return data, storage.sim.now

    traced_data, traced_now = run(True)
    plain_data, plain_now = run(False)
    assert traced_data == plain_data
    assert traced_now == plain_now


def test_storage_metrics_snapshot_contains_core_families():
    storage = run_traced_workload(seed=1, objects=6)
    registry = storage_metrics(storage)
    names = {family.name for family in registry.families()}
    assert {
        "repro_sim_seconds",
        "repro_engine_ops",
        "repro_space_bytes",
        "repro_dedup_ratio_ideal",
        "repro_trace_spans",
    } <= names
    # Snapshotting twice into the same registry must be legal (gauges
    # overwrite; idempotent registration).
    assert storage_metrics(storage, registry) is registry
    assert registry.get("repro_trace_spans").labels().value == len(
        storage.tracer.spans
    )


def test_storage_metrics_exports_cache_and_read_fanout_families():
    """PR 2/9/10 cache counters surface as one labeled family, plus the
    chunk-cache residency gauges and read fan-out stats, and all of them
    survive Prometheus text exposition."""
    from repro.cluster import RadosCluster
    from repro.core import DedupConfig, DedupedStorage
    from repro.obs.export import prometheus_text
    from repro.workloads import ContentGenerator

    cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=8)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=16 * KiB, cache_on_flush=False),
        start_engine=False,
    )
    gen = ContentGenerator(seed=11, dedupe_ratio=0.5)
    for i in range(4):
        storage.write_sync(f"o-{i}", gen.block(64 * KiB))
    storage.drain()
    for _ in range(3):  # cold, warm-up (admissions), re-read (hits)
        for i in range(4):
            storage.read_sync(f"o-{i}")

    registry = storage_metrics(storage)
    names = {family.name for family in registry.families()}
    assert {
        "repro_cache_events",
        "repro_chunk_cache_bytes",
        "repro_chunk_cache_entries",
        "repro_read_fanout",
        "repro_stage_counters",
    } <= names

    stage = storage.tier.stage
    events = registry.get("repro_cache_events")
    expected = {
        ("refset", "hit"): stage.refset_cache_hits,
        ("refset", "miss"): stage.refset_cache_misses,
        ("bloom", "negative_hit"): stage.bloom_negative_hits,
        ("map", "hit"): stage.map_cache_hits,
        ("map", "miss"): stage.map_cache_misses,
        ("map", "invalidation"): stage.map_cache_invalidations,
        ("chunk_data", "hit"): stage.chunk_cache_hits,
        ("chunk_data", "miss"): stage.chunk_cache_misses,
        ("chunk_data", "admission"): stage.chunk_cache_admissions,
        ("chunk_data", "eviction"): stage.chunk_cache_evictions,
    }
    for (cache, event), value in expected.items():
        assert events.labels(cache=cache, event=event).value == value
    # The workload above actually drove the chunk data cache.
    assert stage.chunk_cache_hits > 0
    assert stage.chunk_cache_admissions > 0
    assert stage.fanout_chunk_reads > 0

    cache = storage.tier.chunk_data_cache
    assert registry.get("repro_chunk_cache_bytes").labels().value == (
        cache.bytes_used
    )
    assert registry.get("repro_chunk_cache_entries").labels().value == len(cache)
    assert cache.bytes_used > 0

    fanout = registry.get("repro_read_fanout")
    assert fanout.labels(stat="chunk_reads").value == stage.fanout_chunk_reads
    assert fanout.labels(stat="batches").value == stage.fanout_batches
    assert fanout.labels(stat="batched_chunks").value == stage.fanout_batched_chunks

    text = prometheus_text(registry)
    assert 'repro_cache_events{cache="chunk_data",event="hit"}' in text
    assert 'repro_read_fanout{stat="batches"}' in text
    assert "repro_chunk_cache_bytes" in text
    # Raw stage counters keep flowing through the flat family too.
    assert 'repro_stage_counters{counter="chunk_cache_hits"}' in text


def test_obs_cli_trace_report_and_top_spans(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.jsonl")
    metrics_path = str(tmp_path / "metrics.prom")
    assert (
        main(
            [
                "obs",
                "trace",
                "--objects",
                "9",
                "--out",
                trace_path,
                "--metrics-out",
                metrics_path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "integrity OK" in out
    records = load_trace_jsonl(trace_path)
    assert check_trace(records, required_stages=REQUIRED_STAGE_PREFIXES) == []
    with open(metrics_path, encoding="utf-8") as fh:
        assert "repro_sim_seconds" in fh.read()

    assert main(["obs", "report", "--trace", trace_path]) == 0
    report = capsys.readouterr().out
    assert "root coverage:" in report
    assert "integrity: OK" in report
    assert "op.write" in report

    assert (
        main(
            ["obs", "top-spans", "--trace", trace_path, "-n", "3", "--stage", "op."]
        )
        == 0
    )
    top = capsys.readouterr().out.strip().splitlines()
    assert len(top) == 3
    assert all("op." in line for line in top)


def test_obs_report_rejects_an_empty_trace(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["obs", "report", "--trace", str(empty)]) == 1


def test_perf_harness_attaches_span_rollups_when_traced():
    from repro.perf.harness import _run_fio_mode

    traced = _run_fio_mode("batched", {"fingerprint_workers": 1}, 0, True, True)
    plain = _run_fio_mode("batched", {"fingerprint_workers": 1}, 0, True, False)
    assert traced.spans and not plain.spans
    assert any(stage.startswith("rados.") for stage in traced.spans)
    assert traced.spans["op.dedup_pass"]["count"] > 0
    # Tracing must not change what the workload computed.
    assert traced.readback_digest == plain.readback_digest
    assert traced.refcounts == plain.refcounts
    assert traced.sim_seconds == plain.sim_seconds
