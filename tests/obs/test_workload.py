"""End-to-end obs tests: traced workloads, the CLI, and collectors."""

from repro.cli import main
from repro.obs import check_trace
from repro.obs.cli import REQUIRED_STAGE_PREFIXES, run_traced_workload
from repro.obs.collect import storage_metrics
from repro.obs.export import load_trace_jsonl

KiB = 1024


def test_traced_workload_satisfies_the_obs_smoke_contract():
    storage = run_traced_workload(seed=3, objects=12)
    records = storage.tracer.to_records()
    assert records
    problems = check_trace(
        records,
        required_stages=REQUIRED_STAGE_PREFIXES,
        coverage_threshold=0.95,
    )
    assert problems == []
    roots = {r["stage"] for r in records if r["parent_id"] is None}
    assert {"op.write", "op.dedup_pass", "op.read", "op.delete"} <= roots


def test_traced_workload_is_deterministic():
    first = run_traced_workload(seed=7, objects=10).tracer.to_records()
    second = run_traced_workload(seed=7, objects=10).tracer.to_records()
    assert first == second  # bit-for-bit: ids, stages, times, tags


def test_tracing_does_not_perturb_the_simulation():
    from repro.cluster import RadosCluster
    from repro.core import DedupConfig, DedupedStorage
    from repro.workloads import ContentGenerator

    def run(trace_ops):
        cluster = RadosCluster(num_hosts=2, osds_per_host=2, pg_num=16)
        storage = DedupedStorage(
            cluster,
            DedupConfig(chunk_size=16 * KiB, trace_ops=trace_ops),
            start_engine=False,
        )
        gen = ContentGenerator(seed=5, dedupe_ratio=0.6)
        for i in range(8):
            storage.write_sync(f"o-{i}", gen.block(32 * KiB))
        storage.drain()
        data = [storage.read_sync(f"o-{i}") for i in range(8)]
        return data, storage.sim.now

    traced_data, traced_now = run(True)
    plain_data, plain_now = run(False)
    assert traced_data == plain_data
    assert traced_now == plain_now


def test_storage_metrics_snapshot_contains_core_families():
    storage = run_traced_workload(seed=1, objects=6)
    registry = storage_metrics(storage)
    names = {family.name for family in registry.families()}
    assert {
        "repro_sim_seconds",
        "repro_engine_ops",
        "repro_space_bytes",
        "repro_dedup_ratio_ideal",
        "repro_trace_spans",
    } <= names
    # Snapshotting twice into the same registry must be legal (gauges
    # overwrite; idempotent registration).
    assert storage_metrics(storage, registry) is registry
    assert registry.get("repro_trace_spans").labels().value == len(
        storage.tracer.spans
    )


def test_obs_cli_trace_report_and_top_spans(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.jsonl")
    metrics_path = str(tmp_path / "metrics.prom")
    assert (
        main(
            [
                "obs",
                "trace",
                "--objects",
                "9",
                "--out",
                trace_path,
                "--metrics-out",
                metrics_path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "integrity OK" in out
    records = load_trace_jsonl(trace_path)
    assert check_trace(records, required_stages=REQUIRED_STAGE_PREFIXES) == []
    with open(metrics_path, encoding="utf-8") as fh:
        assert "repro_sim_seconds" in fh.read()

    assert main(["obs", "report", "--trace", trace_path]) == 0
    report = capsys.readouterr().out
    assert "root coverage:" in report
    assert "integrity: OK" in report
    assert "op.write" in report

    assert (
        main(
            ["obs", "top-spans", "--trace", trace_path, "-n", "3", "--stage", "op."]
        )
        == 0
    )
    top = capsys.readouterr().out.strip().splitlines()
    assert len(top) == 3
    assert all("op." in line for line in top)


def test_obs_report_rejects_an_empty_trace(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["obs", "report", "--trace", str(empty)]) == 1


def test_perf_harness_attaches_span_rollups_when_traced():
    from repro.perf.harness import _run_fio_mode

    traced = _run_fio_mode("batched", {"fingerprint_workers": 1}, 0, True, True)
    plain = _run_fio_mode("batched", {"fingerprint_workers": 1}, 0, True, False)
    assert traced.spans and not plain.spans
    assert any(stage.startswith("rados.") for stage in traced.spans)
    assert traced.spans["op.dedup_pass"]["count"] > 0
    # Tracing must not change what the workload computed.
    assert traced.readback_digest == plain.readback_digest
    assert traced.refcounts == plain.refcounts
    assert traced.sim_seconds == plain.sim_seconds
