"""Unit tests for the simulation kernel's event loop and processes."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.5)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 1.5
    assert sim.now == 1.5


def test_timeout_carries_value():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    for name, delay in [("c", 3.0), ("a", 1.0), ("b", 2.0)]:
        sim.process(proc(sim, name, delay))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    """Events scheduled for the same instant fire in scheduling order."""
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abcde":
        sim.process(proc(sim, name))
    sim.run()
    assert order == list("abcde")


def test_process_waits_on_process():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(2.0)
        return 42

    def outer(sim):
        value = yield sim.process(inner(sim))
        return value + 1

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == 43


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    def outer(sim):
        try:
            yield sim.process(failing(sim))
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "caught boom"


def test_uncaught_process_exception_fails_process_event():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("bad")

    p = sim.process(failing(sim))
    sim.run()
    assert p.triggered and not p.ok
    with pytest.raises(ValueError):
        _ = p.value


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_subscribe_after_processed_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.subscribe(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def outer(sim):
        ps = [sim.process(proc(sim, d, v)) for d, v in [(3, "x"), (1, "y")]]
        values = yield sim.all_of(ps)
        return values

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == ["x", "y"]  # construction order, not completion order
    assert sim.now == 3


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def outer(sim):
        values = yield sim.all_of([])
        return (sim.now, values)

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == (0.0, [])


def test_any_of_returns_first():
    sim = Simulator()

    def proc(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def outer(sim):
        slow = sim.process(proc(sim, 5, "slow"))
        fast = sim.process(proc(sim, 1, "fast"))
        event, value = yield sim.any_of([slow, fast])
        return (sim.now, value, event is fast)

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == (1.0, "fast", True)


def test_all_of_propagates_failure():
    sim = Simulator()

    def ok(sim):
        yield sim.timeout(1.0)

    def bad(sim):
        yield sim.timeout(2.0)
        raise KeyError("k")

    def outer(sim):
        try:
            yield sim.all_of([sim.process(ok(sim)), sim.process(bad(sim))])
        except KeyError:
            return "failed"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "failed"


def test_interrupt_raises_in_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt("stop now")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert victim.value == ("interrupted", "stop now", 3.0)


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("too late")
    sim.run()
    assert p.value == "done"


def test_interrupted_process_can_keep_running():
    """After catching Interrupt, the process continues; the stale timeout
    wake-up must not resume it a second time."""
    sim = Simulator()

    def sleeper(sim):
        resumed = 0
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        resumed += 1
        yield sim.timeout(5.0)
        return (resumed, sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert victim.value == (1, 6.0)


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "answer"

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == "answer"


def test_run_until_complete_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never triggered

    def waiter(sim, ev):
        yield ev

    p = sim.process(waiter(sim, ev))
    with pytest.raises(SimulationError):
        sim.run_until_complete(p)


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.process(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.exception, SimulationError)


def test_cross_simulator_event_is_error():
    sim_a, sim_b = Simulator(), Simulator()

    def bad(sim_a, sim_b):
        yield sim_b.timeout(1.0)

    p = sim_a.process(bad(sim_a, sim_b))
    sim_a.run()
    assert not p.ok
    assert isinstance(p.exception, SimulationError)


def test_call_later_ordering():
    sim = Simulator()
    seen = []
    sim.call_later(2.0, seen.append, "late")
    sim.call_soon(seen.append, "soon")
    sim.run()
    assert seen == ["soon", "late"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_later(7.0, lambda: None)
    assert sim.peek() == 7.0
