"""Edge-case coverage for the simulation kernel."""


from repro.sim import Resource, Simulator, Store


def test_all_of_with_already_triggered_events():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()

    def outer(sim, done):
        pending = sim.timeout(2.0, value="late")
        values = yield sim.all_of([done, pending])
        return values

    p = sim.process(outer(sim, done))
    sim.run()
    assert p.value == ["early", "late"]


def test_any_of_with_already_triggered_event_wins():
    sim = Simulator()
    done = sim.event()
    done.succeed("instant")
    sim.run()

    def outer(sim, done):
        slow = sim.timeout(10.0)
        event, value = yield sim.any_of([done, slow])
        return (sim.now, value)

    p = sim.process(outer(sim, done))
    sim.run_until_complete(p)
    assert p.value == (0.0, "instant")


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf(sim):
        yield sim.timeout(1.0)
        return 1

    def middle(sim):
        value = yield sim.process(leaf(sim))
        yield sim.timeout(1.0)
        return value + 1

    def root(sim):
        value = yield sim.process(middle(sim))
        return value + 1

    p = sim.process(root(sim))
    sim.run()
    assert p.value == 3
    assert sim.now == 2.0


def test_store_get_before_put_fifo_getters():
    sim = Simulator()
    store = Store(sim)
    order = []

    def getter(sim, store, name):
        item = yield store.get()
        order.append((name, item))

    def putter(sim, store):
        yield sim.timeout(1.0)
        yield store.put("a")
        yield store.put("b")

    sim.process(getter(sim, store, "first"))
    sim.process(getter(sim, store, "second"))
    sim.process(putter(sim, store))
    sim.run()
    assert order == [("first", "a"), ("second", "b")]


def test_resource_released_in_finally_on_failure():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def failing(sim, res):
        yield res.acquire()
        try:
            yield sim.timeout(1.0)
            raise RuntimeError("boom")
        finally:
            res.release()

    def follower(sim, res):
        yield res.acquire()
        res.release()
        return sim.now

    bad = sim.process(failing(sim, res))
    good = sim.process(follower(sim, res))
    sim.run()
    assert not bad.ok
    assert good.value == 1.0  # the slot was freed despite the crash
    assert res.in_use == 0


def test_process_return_none_by_default():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.5)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value is None


def test_zero_delay_timeout_fires_in_fifo_order():
    sim = Simulator()
    seen = []

    def proc(sim, name):
        yield sim.timeout(0.0)
        seen.append(name)

    for name in "abc":
        sim.process(proc(sim, name))
    sim.run()
    assert seen == list("abc")
    assert sim.now == 0.0
