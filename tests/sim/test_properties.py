"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, TokenBucket


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_clock_is_monotonic(delays):
    """However timeouts interleave, observed times never decrease."""
    sim = Simulator()
    observed = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(proc(sim, delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    )
)
def test_final_time_is_max_delay(delays):
    sim = Simulator()

    def proc(sim, delay):
        yield sim.timeout(delay)

    for delay in delays:
        sim.process(proc(sim, delay))
    sim.run()
    assert sim.now == max(delays)


@given(
    service_times=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_conserves_work(service_times, capacity):
    """Total busy-integral equals the sum of service times, regardless of
    capacity and queueing, and makespan >= total_work / capacity."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)

    def user(sim, res, t):
        yield sim.process(res.serve(t))

    for t in service_times:
        sim.process(user(sim, res, t))
    sim.run()
    res._account()
    total = sum(service_times)
    assert res.busy_integral == pytest_approx(total)
    assert sim.now >= total / capacity - 1e-9
    assert sim.now <= total + 1e-9


def pytest_approx(x, rel=1e-9):
    import pytest

    return pytest.approx(x, rel=rel, abs=1e-9)


@given(
    amounts=st.lists(
        st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=20
    ),
    rate=st.floats(min_value=0.5, max_value=50.0),
)
@settings(max_examples=50)
def test_token_bucket_never_exceeds_rate(amounts, rate):
    """Cumulative grants can never outpace burst + rate * time."""
    sim = Simulator()
    capacity = 5.0
    bucket = TokenBucket(sim, rate=rate, capacity=capacity)
    grants = []

    def user(sim, bucket, amount):
        yield bucket.acquire(amount)
        grants.append((sim.now, amount))

    for amount in amounts:
        sim.process(user(sim, bucket, amount))
    sim.run()
    assert len(grants) == len(amounts)
    cumulative = 0.0
    for when, amount in grants:
        cumulative += amount
        assert cumulative <= capacity + rate * when + 1e-6
