"""Unit tests for Resource, Store, and TokenBucket."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store, TokenBucket


# ---------------------------------------------------------------- Resource


def test_resource_serializes_unit_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish = []

    def user(sim, res, name):
        yield sim.process(res.serve(2.0))
        finish.append((name, sim.now))

    for name in ("a", "b", "c"):
        sim.process(user(sim, res, name))
    sim.run()
    assert finish == [("a", 2.0), ("b", 4.0), ("c", 6.0)]


def test_resource_parallel_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    finish = []

    def user(sim, res, name):
        yield sim.process(res.serve(2.0))
        finish.append((name, sim.now))

    for name in ("a", "b", "c"):
        sim.process(user(sim, res, name))
    sim.run()
    # a and b run together; c waits for the first release.
    assert finish == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, name, arrive):
        yield sim.timeout(arrive)
        yield res.acquire()
        order.append(name)
        yield sim.timeout(1.0)
        res.release()

    sim.process(user(sim, res, "first", 0.0))
    sim.process(user(sim, res, "second", 0.1))
    sim.process(user(sim, res, "third", 0.2))
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield sim.process(res.serve(4.0))
        yield sim.timeout(4.0)  # idle period

    p = sim.process(user(sim, res))
    sim.run_until_complete(p)
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_resource_queue_len():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        yield sim.process(res.serve(10.0))

    def waiter(sim, res):
        yield sim.timeout(1.0)
        yield res.acquire()
        res.release()

    sim.process(holder(sim, res))
    sim.process(waiter(sim, res))
    sim.run(until=2.0)
    assert res.queue_len == 1
    assert res.in_use == 1


# ------------------------------------------------------------------- Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        yield store.put("item")

    def consumer(sim, store):
        item = yield store.get()
        return item

    sim.process(producer(sim, store))
    c = sim.process(consumer(sim, store))
    sim.run()
    assert c.value == "item"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim, store):
        item = yield store.get()
        return (item, sim.now)

    def producer(sim, store):
        yield sim.timeout(5.0)
        yield store.put("late")

    c = sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert c.value == ("late", 5.0)


def test_store_fifo_items():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)

    def consumer(sim, store):
        got = []
        for _ in range(3):
            item = yield store.get()
            got.append(item)
        return got

    sim.process(producer(sim, store))
    c = sim.process(consumer(sim, store))
    sim.run()
    assert c.value == [0, 1, 2]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim, store):
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")
        timeline.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(3.0)
        item = yield store.get()
        timeline.append(("got", item, sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 3.0) in timeline  # blocked until the get at t=3


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    sim.run()
    assert len(store) == 2


# ------------------------------------------------------------- TokenBucket


def test_token_bucket_immediate_within_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, capacity=5.0)

    def user(sim, bucket):
        yield bucket.acquire(5.0)
        return sim.now

    p = sim.process(user(sim, bucket))
    sim.run()
    assert p.value == 0.0


def test_token_bucket_throttles_at_rate():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, capacity=10.0)

    def user(sim, bucket):
        # Drain the burst, then each further 10-token acquire takes 1s.
        yield bucket.acquire(10.0)
        yield bucket.acquire(10.0)
        yield bucket.acquire(10.0)
        return sim.now

    p = sim.process(user(sim, bucket))
    sim.run()
    assert p.value == pytest.approx(2.0)


def test_token_bucket_fifo_no_starvation():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, capacity=10.0)
    order = []

    def user(sim, bucket, name, amount, arrive):
        yield sim.timeout(arrive)
        yield bucket.acquire(amount)
        order.append(name)

    # Big request arrives first and must be served before the later small one.
    sim.process(user(sim, bucket, "big", 10.0, 0.0))
    sim.process(user(sim, bucket, "big2", 10.0, 0.1))
    sim.process(user(sim, bucket, "small", 1.0, 0.2))
    sim.run()
    assert order == ["big", "big2", "small"]


def test_token_bucket_rejects_oversize_request():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, capacity=5.0)
    with pytest.raises(ValueError):
        bucket.acquire(6.0)


def test_token_bucket_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=1.0, capacity=0.0)
    bucket = TokenBucket(sim, rate=1.0)
    with pytest.raises(ValueError):
        bucket.acquire(0.0)


def test_token_bucket_refills_to_capacity_only():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0, capacity=10.0)

    def user(sim, bucket):
        yield bucket.acquire(10.0)
        yield sim.timeout(100.0)  # far longer than needed to refill
        return bucket.tokens

    p = sim.process(user(sim, bucket))
    sim.run()
    assert p.value == pytest.approx(10.0)
