"""Tests for deterministic named RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_varies_by_name_and_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_stream_is_memoized():
    reg = RngRegistry(seed=7)
    assert reg.stream("x") is reg.stream("x")


def test_streams_independent():
    reg = RngRegistry(seed=7)
    a_draws = [reg.stream("a").random() for _ in range(5)]
    reg2 = RngRegistry(seed=7)
    # Interleave draws from another stream; "a" must be unaffected.
    b = reg2.stream("b")
    a2 = reg2.stream("a")
    interleaved = []
    for _ in range(5):
        b.random()
        interleaved.append(a2.random())
    assert a_draws == interleaved


def test_same_seed_reproduces_sequence():
    r1 = RngRegistry(seed=42).stream("w")
    r2 = RngRegistry(seed=42).stream("w")
    assert [r1.randint(0, 10**9) for _ in range(10)] == [
        r2.randint(0, 10**9) for _ in range(10)
    ]


def test_fork_is_independent():
    reg = RngRegistry(seed=42)
    child = reg.fork("child")
    assert child.stream("w").random() != reg.stream("w").random()
