"""Meta-test: every public API item carries a docstring.

The library's contract includes documentation on every public item;
this test walks each package's ``__all__`` and fails on any public
class, function, or method group that lacks one.
"""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.chunking",
    "repro.fingerprint",
    "repro.compression",
    "repro.core",
    "repro.workloads",
    "repro.metrics",
    "repro.bench",
]


def iter_public_items():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            yield package_name, name, getattr(package, name)


def test_packages_have_docstrings():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        assert module.__doc__, f"{package_name} lacks a module docstring"


def test_all_modules_have_docstrings():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if not hasattr(package, "__path__"):
            continue
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":  # importing it runs the CLI
                continue
            module = importlib.import_module(f"{package_name}.{info.name}")
            assert module.__doc__, f"{module.__name__} lacks a docstring"


def test_public_items_have_docstrings():
    undocumented = []
    for package_name, name, item in iter_public_items():
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_methods_have_docstrings():
    undocumented = []
    for package_name, name, item in iter_public_items():
        if not inspect.isclass(item):
            continue
        for attr_name, attr in vars(item).items():
            if attr_name.startswith("_"):
                continue
            if inspect.isfunction(attr) and not inspect.getdoc(attr):
                undocumented.append(f"{package_name}.{name}.{attr_name}")
    assert not undocumented, f"undocumented public methods: {undocumented}"


def test_all_exports_resolve():
    for package_name, name, item in iter_public_items():
        assert item is not None, f"{package_name}.{name} exports None"
