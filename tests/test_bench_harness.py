"""Tests for the shared benchmark harness helpers."""


from repro.bench import (
    build_cluster,
    default_config,
    fmt_bytes,
    fmt_ms,
    inline,
    original,
    proposed,
    render_table,
)
from repro.cluster import ErasureCoded, Replicated


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2.0KiB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0MiB"
    assert fmt_bytes(5 * 1024**4) == "5.0TiB"


def test_fmt_ms():
    assert fmt_ms(0.00125) == "1.25ms"


def test_render_table_alignment():
    lines = render_table(
        "T", ["col", "x"], [("a", 1), ("long-cell", 22)], notes=["note"]
    )
    assert lines[0] == "== T =="
    assert "long-cell" in lines[4]
    assert lines[-1].strip() == "note"
    # Columns align: header and rows share the same prefix width.
    assert lines[1].index("x") == lines[3].index("1")


def test_build_cluster_paper_shape():
    cluster = build_cluster()
    assert len(cluster.nodes) == 4
    assert len(cluster.osds) == 16


def test_default_config_paper_values():
    config = default_config()
    assert config.chunk_size == 32 * 1024
    assert default_config(chunk_size=4096).chunk_size == 4096


def test_storage_builders():
    plain = original()
    assert isinstance(plain.pool.redundancy, Replicated)
    plain_ec = original(ec=True)
    assert isinstance(plain_ec.pool.redundancy, ErasureCoded)
    dedup = proposed()
    assert dedup.tier.metadata_pool.redundancy == Replicated(2)
    dedup_ec = proposed(ec=True)
    assert dedup_ec.tier.chunk_pool.redundancy == ErasureCoded(2, 1)
    flush = proposed(flush_on_write=True)
    assert flush.flush_on_write
    inl = inline()
    assert inl.config.chunk_size == 32 * 1024


def test_report_registry():
    from repro.bench import harness

    before = len(harness.RESULTS)
    harness.report(["== t ==", "row"])
    assert len(harness.RESULTS) == before + 1
    harness.RESULTS.pop()
