"""Meta-test: every CI job has a mirrored leg in scripts/ci_local.sh.

The local runner exists so "CI is red" is always reproducible offline;
it drifts the moment someone adds a workflow job without a local leg.
Parsed with regexes on purpose — the test must run in the minimal test
environment, which has no YAML parser installed.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
LOCAL = REPO / "scripts" / "ci_local.sh"


def workflow_jobs():
    """Job ids in ci.yml: 2-space-indented keys under the jobs: block."""
    jobs = []
    in_jobs = False
    for line in WORKFLOW.read_text(encoding="utf-8").splitlines():
        if re.match(r"^jobs:\s*$", line):
            in_jobs = True
            continue
        if in_jobs and re.match(r"^[A-Za-z_-]+:", line):
            break  # left the jobs: block (a new top-level key)
        match = re.match(r"^  ([A-Za-z0-9_-]+):\s*$", line)
        if in_jobs and match:
            jobs.append(match.group(1))
    return jobs


def local_legs():
    """Mirrored legs in ci_local.sh: '# -- <job> job' section markers."""
    return re.findall(
        r"^# -- ([A-Za-z0-9_-]+) job",
        LOCAL.read_text(encoding="utf-8"),
        flags=re.MULTILINE,
    )


def test_files_exist():
    assert WORKFLOW.is_file()
    assert LOCAL.is_file()


def test_parsers_found_something():
    assert len(workflow_jobs()) >= 5
    assert len(local_legs()) >= 5


def test_every_workflow_job_has_a_local_leg():
    missing = set(workflow_jobs()) - set(local_legs())
    assert not missing, (
        f"ci.yml job(s) {sorted(missing)} have no '# -- <job> job' leg in"
        f" scripts/ci_local.sh — add the leg (or a stub explaining why it"
        f" cannot run locally)"
    )


def test_every_local_leg_matches_a_workflow_job():
    stale = set(local_legs()) - set(workflow_jobs())
    assert not stale, (
        f"scripts/ci_local.sh leg(s) {sorted(stale)} do not correspond to"
        f" any ci.yml job — remove them or rename to match"
    )


def test_no_duplicate_markers():
    legs = local_legs()
    assert len(legs) == len(set(legs))
    jobs = workflow_jobs()
    assert len(jobs) == len(set(jobs))
