"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ICDCS 2018" in out
    assert "benchmarks" in out


def test_demo_reports_savings(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "ideal dedup ratio" in out
    assert "75.0%" in out


def test_status_snapshot(capsys):
    assert main(["status"]) == 0
    out = capsys.readouterr().out
    assert "dirty backlog" in out
    assert "dedup ratio" in out


def test_scrub_clean_exit_code(capsys):
    assert main(["scrub"]) == 0
    assert "CLEAN" in capsys.readouterr().out


def test_seed_changes_content(capsys):
    main(["--seed", "1", "demo"])
    first = capsys.readouterr().out
    main(["--seed", "2", "demo"])
    second = capsys.readouterr().out
    assert "dedup ratio" in first and "dedup ratio" in second


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
