"""Tests for the Bloom filter."""

import pytest

from repro.util import BloomFilter


def test_no_false_negatives():
    bf = BloomFilter(capacity=1000)
    items = [f"obj{i}" for i in range(1000)]
    for item in items:
        bf.add(item)
    assert all(item in bf for item in items)


def test_false_positive_rate_bounded():
    bf = BloomFilter(capacity=1000, error_rate=0.01)
    for i in range(1000):
        bf.add(f"obj{i}")
    false_positives = sum(1 for i in range(10_000) if f"other{i}" in bf)
    assert false_positives / 10_000 < 0.05


def test_empty_filter_contains_nothing():
    bf = BloomFilter(capacity=100)
    assert "anything" not in bf


def test_memory_scales_with_capacity():
    small = BloomFilter(capacity=100)
    large = BloomFilter(capacity=10_000)
    assert large.memory_bytes() > small.memory_bytes()


def test_invalid_params():
    with pytest.raises(ValueError):
        BloomFilter(capacity=0)
    with pytest.raises(ValueError):
        BloomFilter(capacity=10, error_rate=1.5)
