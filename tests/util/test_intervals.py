"""Tests for the disjoint interval set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import IntervalSet


def ivs(*pairs):
    s = IntervalSet()
    for a, b in pairs:
        s.add(a, b)
    return s


def test_add_disjoint():
    s = ivs((0, 5), (10, 15))
    assert list(s) == [(0, 5), (10, 15)]
    assert s.total() == 10


def test_add_merges_overlap():
    s = ivs((0, 5), (3, 8))
    assert list(s) == [(0, 8)]


def test_add_merges_adjacent():
    s = ivs((0, 5), (5, 10))
    assert list(s) == [(0, 10)]


def test_add_empty_is_noop():
    s = ivs((3, 3))
    assert not s


def test_remove_splits():
    s = ivs((0, 10))
    s.remove(3, 6)
    assert list(s) == [(0, 3), (6, 10)]


def test_remove_edges():
    s = ivs((0, 10))
    s.remove(0, 4)
    s.remove(8, 10)
    assert list(s) == [(4, 8)]


def test_remove_everything():
    s = ivs((0, 10), (20, 30))
    s.remove(0, 30)
    assert not s


def test_remove_disjoint_noop():
    s = ivs((5, 10))
    s.remove(0, 5)
    s.remove(10, 20)
    assert list(s) == [(5, 10)]


def test_total_within():
    s = ivs((0, 10), (20, 30))
    assert s.total_within(5, 25) == 10  # 5..10 and 20..25
    assert s.total_within(10, 20) == 0


def test_contains():
    s = ivs((5, 10))
    assert s.contains(5)
    assert s.contains(9)
    assert not s.contains(10)
    assert not s.contains(4)


def test_clip():
    s = ivs((0, 10), (20, 30))
    s.clip(25)
    assert list(s) == [(0, 10), (20, 25)]


def test_copy_independent():
    s = ivs((0, 10))
    c = s.copy()
    c.remove(0, 5)
    assert list(s) == [(0, 10)]


def test_invalid_interval():
    s = IntervalSet()
    with pytest.raises(ValueError):
        s.add(5, 3)
    with pytest.raises(ValueError):
        s.add(-1, 3)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=40,
    )
)
@settings(max_examples=100)
def test_matches_reference_set_semantics(ops):
    """The interval set behaves exactly like a set of integers."""
    s = IntervalSet()
    reference = set()
    for op, a, b in ops:
        lo, hi = min(a, b), max(a, b)
        if op == "add":
            s.add(lo, hi)
            reference |= set(range(lo, hi))
        else:
            s.remove(lo, hi)
            reference -= set(range(lo, hi))
    assert s.total() == len(reference)
    for point in range(0, 101):
        assert s.contains(point) == (point in reference)
    # Intervals stay sorted and disjoint.
    prev_end = -1
    for start, end in s:
        assert start < end
        assert start > prev_end
        prev_end = end
