"""Tests for the versioned backup-stream workload."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage
from repro.workloads import BackupSpec, BackupStream

KiB = 1024


def test_spec_validation():
    with pytest.raises(ValueError):
        BackupSpec(dataset_size=1000, block_size=512)
    with pytest.raises(ValueError):
        BackupSpec(mutation_rate=1.5)
    with pytest.raises(ValueError):
        BackupSpec(generations=0)


def test_generation_zero_deterministic():
    spec = BackupSpec(dataset_size=64 * KiB, block_size=8 * KiB, seed=5)
    a = list(BackupStream(spec).generation_blocks(0))
    b = list(BackupStream(spec).generation_blocks(0))
    assert a == b
    assert len(a) == 8


def test_mutation_rate_controls_churn():
    spec = BackupSpec(
        dataset_size=512 * KiB, block_size=8 * KiB, mutation_rate=0.1, seed=2
    )
    stream = BackupStream(spec)
    g0 = {oid.split(".o")[1]: blk for oid, blk in stream.generation_blocks(0)}
    g1 = {oid.split(".o")[1]: blk for oid, blk in stream.generation_blocks(1)}
    changed = sum(1 for k in g0 if g0[k] != g1[k])
    assert 0 < changed < 0.25 * len(g0)


def test_zero_mutation_generations_identical_content():
    spec = BackupSpec(
        dataset_size=64 * KiB, block_size=8 * KiB, mutation_rate=0.0
    )
    stream = BackupStream(spec)
    g0 = [blk for _o, blk in stream.generation_blocks(0)]
    g3 = [blk for _o, blk in stream.generation_blocks(3)]
    assert g0 == g3


def test_backup_series_dedups_across_generations():
    spec = BackupSpec(
        dataset_size=256 * KiB,
        block_size=8 * KiB,
        mutation_rate=0.05,
        generations=4,
        seed=7,
    )
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster,
        DedupConfig(chunk_size=8 * KiB, cache_on_flush=False),
        start_engine=False,
    )
    stream = BackupStream(spec)
    for g in range(spec.generations):
        stream.write_generation(storage, g)
    storage.drain()
    report = storage.space_report()
    logical = spec.generations * spec.dataset_size
    assert report.logical_bytes == logical
    # Stored data ~= one base + the churn, far below generations x base.
    assert report.chunk_data_bytes < 0.5 * logical
    assert report.chunk_data_bytes >= spec.dataset_size
    # Latest generation restores byte-identically.
    restored = stream.restore_generation(storage, spec.generations - 1)
    assert restored == stream.expected_generation(spec.generations - 1)


def test_all_generations_independently_restorable():
    spec = BackupSpec(
        dataset_size=64 * KiB, block_size=8 * KiB, mutation_rate=0.3,
        generations=3, seed=9,
    )
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=8 * KiB), start_engine=False
    )
    stream = BackupStream(spec)
    histories = []
    for g in range(spec.generations):
        stream.write_generation(storage, g)
        histories.append(list(stream._last_changed))
    storage.drain()
    for g in range(spec.generations):
        assert stream.restore_generation(storage, g) == stream.expected_generation(
            g, histories[g]
        )
