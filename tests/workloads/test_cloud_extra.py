"""Additional coverage for the VM population generator."""

import pytest

from repro.fingerprint import fingerprint
from repro.workloads import VmImagePopulation, VmPopulationSpec

KiB = 1024


def test_zero_fraction_blocks_are_zero():
    spec = VmPopulationSpec(
        num_vms=2,
        image_size=256 * KiB,
        block_size=64 * KiB,
        os_base_fraction=0.25,
        common_fraction=0.0,
        zero_fraction=0.5,
    )
    pop = VmImagePopulation(spec)
    blocks = [blk for _o, blk in pop.image_blocks(0)]
    assert blocks[2] == b"\x00" * (64 * KiB)
    assert blocks[3] == b"\x00" * (64 * KiB)
    assert blocks[0] != b"\x00" * (64 * KiB)


def test_zero_blocks_shared_across_vms():
    spec = VmPopulationSpec(
        num_vms=3,
        image_size=256 * KiB,
        block_size=64 * KiB,
        os_base_fraction=0.25,
        common_fraction=0.0,
        zero_fraction=0.5,
    )
    pop = VmImagePopulation(spec)
    fps = set()
    for vm in range(3):
        for _oid, blk in pop.image_blocks(vm):
            fps.add(fingerprint(blk))
    # 3 unique base? base=1 block/VM? 0.25*4=1 base (shared per template),
    # 1 unique per VM, 2 zero blocks (one shared fp).
    assert len(fps) == 1 + 3 + 1


def test_perturbed_blocks_share_tails():
    spec = VmPopulationSpec(
        num_vms=2,
        image_size=256 * KiB,
        block_size=64 * KiB,
        os_base_fraction=1.0,
        common_fraction=0.0,
        perturb_fraction=0.5,
        perturb_bytes=8 * KiB,
    )
    pop = VmImagePopulation(spec)
    vm0 = [blk for _o, blk in pop.image_blocks(0)]
    vm1 = [blk for _o, blk in pop.image_blocks(1)]
    # Perturbed blocks (first half of the base): unique heads, same tails.
    assert vm0[0][: 8 * KiB] != vm1[0][: 8 * KiB]
    assert vm0[0][8 * KiB :] == vm1[0][8 * KiB :]
    # Unperturbed base blocks are fully identical.
    assert vm0[3] == vm1[3]


def test_fraction_sum_validation_includes_zero_fraction():
    with pytest.raises(ValueError):
        VmPopulationSpec(
            os_base_fraction=0.6, common_fraction=0.3, zero_fraction=0.2
        )
    with pytest.raises(ValueError):
        VmPopulationSpec(perturb_bytes=0)


def test_write_vm_object_size_must_align():
    spec = VmPopulationSpec(num_vms=1, image_size=128 * KiB, block_size=64 * KiB)
    pop = VmImagePopulation(spec)

    class _Sink:
        def write_sync(self, oid, data):
            pass

    with pytest.raises(ValueError):
        pop.write_vm(_Sink(), 0, object_size=100 * KiB)
