"""Tests for the content generator."""

import pytest

from repro.compression import ZlibCodec
from repro.fingerprint import fingerprint
from repro.workloads import ContentGenerator


def dedup_ratio(blocks):
    total = sum(len(b) for b in blocks)
    unique_bytes = sum(len(b) for b in {fingerprint(x): x for x in blocks}.values())
    return 1.0 - unique_bytes / total


def test_zero_dedupe_all_unique():
    gen = ContentGenerator(seed=0, dedupe_ratio=0.0)
    blocks = [gen.block(4096) for _ in range(100)]
    assert len({fingerprint(b) for b in blocks}) == 100


def test_target_dedupe_ratio_roughly_met():
    gen = ContentGenerator(seed=0, dedupe_ratio=0.5)
    blocks = [gen.block(4096) for _ in range(1000)]
    ratio = dedup_ratio(blocks)
    assert 0.40 < ratio < 0.60


def test_high_dedupe_ratio():
    gen = ContentGenerator(seed=1, dedupe_ratio=0.8)
    blocks = [gen.block(4096) for _ in range(1000)]
    assert 0.70 < dedup_ratio(blocks) < 0.90


def test_deterministic_across_instances():
    a = ContentGenerator(seed=42, dedupe_ratio=0.5)
    b = ContentGenerator(seed=42, dedupe_ratio=0.5)
    assert [a.block(512) for _ in range(50)] == [b.block(512) for _ in range(50)]


def test_different_seeds_differ():
    a = ContentGenerator(seed=1)
    b = ContentGenerator(seed=2)
    assert a.block(512) != b.block(512)


def test_compressibility_controlled():
    codec = ZlibCodec()
    incompressible = ContentGenerator(seed=0, compress_ratio=0.0).block(65536)
    compressible = ContentGenerator(seed=0, compress_ratio=0.8).block(65536)
    assert codec.measure(incompressible).ratio < 0.05
    assert codec.measure(compressible).ratio > 0.6


def test_stream_totals():
    gen = ContentGenerator(seed=0)
    blocks = gen.stream(10_000, 4096)
    assert sum(len(b) for b in blocks) == 10_000
    assert [len(b) for b in blocks] == [4096, 4096, 1808]


def test_invalid_params():
    with pytest.raises(ValueError):
        ContentGenerator(dedupe_ratio=1.5)
    with pytest.raises(ValueError):
        ContentGenerator(compress_ratio=-0.1)
    with pytest.raises(ValueError):
        ContentGenerator(duplicate_pool_size=0)
    with pytest.raises(ValueError):
        ContentGenerator().block(0)
