"""Tests for the FIO-like workload runner."""

import pytest

from repro.cluster import RadosCluster
from repro.core import DedupConfig, DedupedStorage, PlainStorage
from repro.workloads import FioJobSpec, FioRunner

KiB = 1024


def plain_storage():
    return PlainStorage(RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32))


def test_spec_validation():
    with pytest.raises(ValueError):
        FioJobSpec(pattern="bogus")
    with pytest.raises(ValueError):
        FioJobSpec(block_size=3000, object_size=65536)  # not a multiple
    with pytest.raises(ValueError):
        FioJobSpec(block_size=4096, file_size=10_000)
    with pytest.raises(ValueError):
        FioJobSpec(dedupe_percentage=200)


def test_sequential_write_covers_file():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="write", block_size=4 * KiB, file_size=64 * KiB, object_size=16 * KiB
    )
    result = FioRunner(storage, spec).run()
    assert result.total_ops == 16
    assert result.total_bytes == 64 * KiB
    # Every object exists and is full size.
    for i in range(4):
        assert len(storage.read_sync(f"fio.j0.o{i}")) == 16 * KiB


def test_read_after_prefill_returns_data():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="read", block_size=4 * KiB, file_size=32 * KiB, object_size=16 * KiB
    )
    runner = FioRunner(storage, spec)
    runner.prefill()
    result = runner.run()
    assert result.total_ops == 8
    assert result.total_bytes == 32 * KiB
    assert result.latency.count == 8
    assert result.latency.mean > 0


def test_random_ops_stay_in_file():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="randwrite",
        block_size=4 * KiB,
        file_size=64 * KiB,
        object_size=16 * KiB,
        seed=3,
    )
    FioRunner(storage, spec).run()
    oids = storage.cluster.list_objects(storage.pool)
    assert all(oid.startswith("fio.j0.o") for oid in oids)
    assert all(int(oid.rsplit("o", 1)[1]) < 4 for oid in oids)


def test_numjobs_use_separate_files():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="write",
        block_size=4 * KiB,
        file_size=16 * KiB,
        object_size=16 * KiB,
        numjobs=3,
    )
    result = FioRunner(storage, spec).run()
    assert result.total_ops == 12
    oids = set(storage.cluster.list_objects(storage.pool))
    assert oids == {"fio.j0.o0", "fio.j1.o0", "fio.j2.o0"}


def test_iodepth_improves_throughput():
    def bandwidth(iodepth):
        storage = plain_storage()
        spec = FioJobSpec(
            pattern="randread",
            block_size=4 * KiB,
            file_size=256 * KiB,
            object_size=64 * KiB,
            iodepth=iodepth,
            seed=7,
        )
        runner = FioRunner(storage, spec)
        runner.prefill()
        return runner.run().bandwidth

    assert bandwidth(8) > 1.5 * bandwidth(1)


def test_runtime_bounded_run():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="write",
        block_size=4 * KiB,
        file_size=64 * KiB,
        object_size=16 * KiB,
        runtime=0.05,
    )
    result = FioRunner(storage, spec).run()
    assert result.duration >= 0.05
    assert result.total_ops > 16  # wrapped around the file


def test_dedupe_percentage_flows_to_storage():
    cluster = RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32)
    storage = DedupedStorage(
        cluster, DedupConfig(chunk_size=4 * KiB), start_engine=False
    )
    spec = FioJobSpec(
        pattern="write",
        block_size=4 * KiB,
        file_size=128 * KiB,
        object_size=16 * KiB,
        dedupe_percentage=50,
        seed=11,
    )
    FioRunner(storage, spec).run()
    storage.drain()
    report = storage.space_report()
    assert report.ideal_dedup_ratio == pytest.approx(0.5, abs=0.15)


def test_result_metrics_consistent():
    storage = plain_storage()
    spec = FioJobSpec(
        pattern="write", block_size=8 * KiB, file_size=64 * KiB, object_size=32 * KiB
    )
    result = FioRunner(storage, spec).run()
    assert result.iops == pytest.approx(result.total_ops / result.duration)
    assert result.bandwidth == pytest.approx(result.total_bytes / result.duration)
    assert result.latency.count == result.total_ops
    assert result.cpu_percent >= 0
