"""Tests for the SFS-DB workload, VM populations, and traces."""

import pytest

from repro.cluster import RadosCluster
from repro.core import PlainStorage
from repro.fingerprint import fingerprint
from repro.workloads import (
    SfsDatabaseSpec,
    SfsDatabaseWorkload,
    Trace,
    TraceOp,
    VmImagePopulation,
    VmPopulationSpec,
    private_cloud_spec,
)

KiB = 1024
MiB = 1024 * KiB


def plain_storage():
    return PlainStorage(RadosCluster(num_hosts=4, osds_per_host=2, pg_num=32))


# ------------------------------------------------------------------- SFS


def test_sfs_spec_scaling():
    spec = SfsDatabaseSpec(load=3, ops_per_load=100, dataset_per_load=1 * MiB)
    assert spec.op_rate == 300
    assert spec.dataset_bytes == 3 * MiB


def test_sfs_spec_validation():
    with pytest.raises(ValueError):
        SfsDatabaseSpec(load=0)
    with pytest.raises(ValueError):
        SfsDatabaseSpec(block_size=3000, object_size=64 * KiB)


def test_sfs_requested_rate_is_fixed():
    storage = plain_storage()
    spec = SfsDatabaseSpec(
        load=1, ops_per_load=100, dataset_per_load=256 * KiB, duration=2.0
    )
    wl = SfsDatabaseWorkload(storage, spec)
    wl.prefill()
    result = wl.run()
    assert result.requested_ops == pytest.approx(200, abs=2)
    assert result.completed_ops == result.requested_ops
    assert result.total_latency.count == result.completed_ops


def test_sfs_mix_includes_all_op_types():
    storage = plain_storage()
    spec = SfsDatabaseSpec(
        load=2, ops_per_load=150, dataset_per_load=256 * KiB, duration=2.0, seed=5
    )
    wl = SfsDatabaseWorkload(storage, spec)
    wl.prefill()
    result = wl.run()
    assert result.per_op_count["randread"] > 0
    assert result.per_op_count["randwrite"] > 0
    assert result.per_op_count["read"] > 0
    assert sum(result.per_op_count.values()) == result.completed_ops


def test_sfs_custom_mix_validation():
    storage = plain_storage()
    with pytest.raises(ValueError):
        SfsDatabaseWorkload(storage, SfsDatabaseSpec(), mix={"read": 0.5})


def test_sfs_op_iops_sums():
    storage = plain_storage()
    spec = SfsDatabaseSpec(
        load=1, ops_per_load=80, dataset_per_load=256 * KiB, duration=1.0
    )
    wl = SfsDatabaseWorkload(storage, spec)
    wl.prefill()
    result = wl.run()
    total = sum(result.op_iops(op) for op in result.per_op_count)
    assert total == pytest.approx(result.achieved_iops)


# ------------------------------------------------------------------ cloud


def test_vm_population_base_blocks_shared():
    spec = VmPopulationSpec(
        num_vms=3, image_size=256 * KiB, block_size=64 * KiB, os_base_fraction=0.75
    )
    pop = VmImagePopulation(spec)
    images = [dict(pop.image_blocks(v)) for v in range(3)]
    # First 3 blocks (75%) identical across VMs; last differs.
    for b in range(3):
        assert images[0][f"vm0.b{b}"] == images[1][f"vm1.b{b}"] == images[2][f"vm2.b{b}"]
    assert images[0]["vm0.b3"] != images[1]["vm1.b3"]


def test_vm_population_deterministic():
    spec = VmPopulationSpec(num_vms=2, image_size=256 * KiB, block_size=64 * KiB)
    a = [blk for _oid, blk in VmImagePopulation(spec).image_blocks(1)]
    b = [blk for _oid, blk in VmImagePopulation(spec).image_blocks(1)]
    assert a == b


def test_vm_population_write_all():
    storage = plain_storage()
    spec = VmPopulationSpec(num_vms=2, image_size=128 * KiB, block_size=64 * KiB)
    written = VmImagePopulation(spec).write_all(storage)
    assert written == 2 * 128 * KiB
    assert len(storage.cluster.list_objects(storage.pool)) == 4


def test_vm_population_dedup_structure():
    """~90% base fraction -> marginal unique data per extra VM is small
    (the Figure 13 shape)."""
    spec = VmPopulationSpec(
        num_vms=4,
        image_size=512 * KiB,
        block_size=64 * KiB,
        os_base_fraction=0.75,
        common_fraction=0.0,
    )
    pop = VmImagePopulation(spec)
    seen = set()
    unique_after_vm = []
    for vm in range(4):
        for _oid, blk in pop.image_blocks(vm):
            seen.add(fingerprint(blk))
        unique_after_vm.append(len(seen))
    # First VM contributes 8 blocks; each later VM only its unique 25%.
    assert unique_after_vm[0] == 8
    assert unique_after_vm[1] - unique_after_vm[0] == 2
    assert unique_after_vm[3] - unique_after_vm[2] == 2


def test_private_cloud_spec_shape():
    spec = private_cloud_spec(num_vms=12, image_size=512 * KiB)
    pop = VmImagePopulation(spec)
    blocks = [blk for vm in range(12) for _o, blk in pop.image_blocks(vm)]
    unique = len({fingerprint(b) for b in blocks})
    ratio = 1 - unique / len(blocks)
    # Tuned toward the paper's 44.8% global ratio at 32 KiB chunks; at
    # whole-block granularity with this few VMs it sits somewhat lower.
    assert 0.25 < ratio < 0.6


def test_vm_spec_validation():
    with pytest.raises(ValueError):
        VmPopulationSpec(num_vms=0)
    with pytest.raises(ValueError):
        VmPopulationSpec(image_size=100, block_size=64)
    with pytest.raises(ValueError):
        VmPopulationSpec(os_base_fraction=0.8, common_fraction=0.3)


# ------------------------------------------------------------------ traces


def test_trace_roundtrip(tmp_path):
    trace = Trace()
    trace.append(TraceOp(at=0.0, op="write", oid="a", offset=0, length=100, content_seed=1))
    trace.append(TraceOp(at=0.5, op="read", oid="a", offset=0, length=100))
    path = str(tmp_path / "t.jsonl")
    trace.save(path)
    back = Trace.load(path)
    assert back.ops == trace.ops


def test_trace_time_order_enforced():
    trace = Trace()
    trace.append(TraceOp(at=1.0, op="write", oid="a", offset=0, length=10))
    with pytest.raises(ValueError):
        trace.append(TraceOp(at=0.5, op="write", oid="a", offset=0, length=10))


def test_trace_op_validation():
    with pytest.raises(ValueError):
        TraceOp(at=0, op="erase", oid="a", offset=0, length=1)
    with pytest.raises(ValueError):
        TraceOp(at=0, op="read", oid="a", offset=-1, length=1)


def test_trace_content_deterministic():
    op = TraceOp(at=0, op="write", oid="a", offset=0, length=64, content_seed=9)
    assert op.content() == op.content()
    assert len(op.content()) == 64


def test_trace_replay_paced():
    storage = plain_storage()
    trace = Trace()
    trace.append(TraceOp(at=0.0, op="write", oid="x", offset=0, length=4096, content_seed=1))
    trace.append(TraceOp(at=1.0, op="write", oid="y", offset=0, length=4096, content_seed=2))
    trace.replay_sync(storage, paced=True)
    assert storage.sim.now >= 1.0
    assert storage.read_sync("x") == trace.ops[0].content()
    assert storage.read_sync("y") == trace.ops[1].content()


def test_trace_replay_unpaced_is_fast():
    storage = plain_storage()
    trace = Trace()
    trace.append(TraceOp(at=0.0, op="write", oid="x", offset=0, length=4096, content_seed=1))
    trace.append(TraceOp(at=100.0, op="read", oid="x", offset=0, length=4096))
    trace.replay_sync(storage, paced=False)
    assert storage.sim.now < 1.0
